"""Unit tests for relocation counters and threshold policies."""

from __future__ import annotations


from repro.rdc.adaptive import AdaptiveThreshold, FixedThreshold
from repro.rdc.relocation import (
    DirectoryRelocationCounters,
    NCSetRelocationCounters,
)


class TestDirectoryCounters:
    def test_counts_per_page_cluster_pair(self):
        c = DirectoryRelocationCounters()
        assert not c.record_capacity_miss(page=1, cluster=0, threshold=2)
        assert not c.record_capacity_miss(1, 0, 2)
        assert c.record_capacity_miss(1, 0, 2)  # 3 > 2
        assert c.count(1, 0) == 3

    def test_pairs_are_independent(self):
        c = DirectoryRelocationCounters()
        c.record_capacity_miss(1, 0, 10)
        assert c.count(1, 1) == 0
        assert c.count(2, 0) == 0

    def test_reset(self):
        c = DirectoryRelocationCounters()
        c.record_capacity_miss(1, 0, 10)
        c.reset(1, 0)
        assert c.count(1, 0) == 0

    def test_n_counters_tracks_memory_overhead(self):
        c = DirectoryRelocationCounters()
        for page in range(5):
            c.record_capacity_miss(page, 0, 10)
        c.record_capacity_miss(0, 3, 10)
        assert c.n_counters() == 6


class TestNCSetCounters:
    def test_threshold_crossing(self):
        c = NCSetRelocationCounters(n_sets=4, page_shift_blocks=6)
        assert not c.record_victimization(0, threshold=1)
        assert c.record_victimization(0, threshold=1)
        assert c.count(0) == 2

    def test_sets_independent(self):
        c = NCSetRelocationCounters(4, 6)
        c.record_victimization(0, 10)
        assert c.count(1) == 0

    def test_reset(self):
        c = NCSetRelocationCounters(4, 6)
        c.record_victimization(2, 10)
        c.reset(2)
        assert c.count(2) == 0

    def test_n_counters_is_set_count(self):
        assert NCSetRelocationCounters(64, 6).n_counters() == 64

    def test_predominant_page(self):
        c = NCSetRelocationCounters(4, page_shift_blocks=6)
        # blocks of page 1 (64..127) twice, page 2 once
        assert c.predominant_page([64, 65, 130], exclude=set()) == 1

    def test_predominant_page_excludes(self):
        c = NCSetRelocationCounters(4, 6)
        assert c.predominant_page([64, 65, 130], exclude={1}) == 2

    def test_predominant_page_empty(self):
        c = NCSetRelocationCounters(4, 6)
        assert c.predominant_page([], exclude=set()) is None
        assert c.predominant_page([64], exclude={1}) is None


class TestFixedThreshold:
    def test_never_adjusts(self):
        t = FixedThreshold(32)
        for _ in range(100):
            assert not t.on_frame_reuse(0)
        assert t.value == 32


class TestAdaptiveThreshold:
    def test_raises_on_thrashing(self):
        t = AdaptiveThreshold(initial=8, increment=2, break_even=12, window=4)
        adjusted = [t.on_frame_reuse(0) for _ in range(4)]
        assert adjusted == [False, False, False, True]
        assert t.value == 10
        assert t.adjustments == 1

    def test_no_adjustment_when_amortised(self):
        t = AdaptiveThreshold(initial=8, increment=2, break_even=12, window=4)
        for _ in range(4):
            assert not t.on_frame_reuse(20)  # hits > break-even
        assert t.value == 8

    def test_window_resets_after_check(self):
        t = AdaptiveThreshold(initial=8, increment=2, break_even=12, window=2)
        t.on_frame_reuse(0)
        t.on_frame_reuse(0)  # adjusts
        assert t.value == 10
        t.on_frame_reuse(0)
        assert t.value == 10  # new window, not yet full
        t.on_frame_reuse(0)
        assert t.value == 12

    def test_mixed_reuses_balance(self):
        t = AdaptiveThreshold(initial=8, increment=2, break_even=12, window=2)
        t.on_frame_reuse(24)  # +12
        t.on_frame_reuse(0)   # -12 -> indicator 0, not negative
        assert t.value == 8

    def test_paper_defaults_shape(self):
        """The paper's policy: init 32, +8, break-even 12, window 2x frames."""
        t = AdaptiveThreshold(initial=32, increment=8, break_even=12, window=256)
        for _ in range(256):
            t.on_frame_reuse(2)
        assert t.value == 40
