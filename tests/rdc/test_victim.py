"""Unit tests for the network victim cache (the paper's proposal)."""

from __future__ import annotations

import pytest

from repro.coherence.states import NCState
from repro.params import CacheGeometry, NCIndexing
from repro.rdc.base import InclusionPolicy
from repro.rdc.victim import VictimNC


@pytest.fixture
def vb():
    # 1 KB 4-way: 16 blocks, 4 sets
    return VictimNC(CacheGeometry(1024, 4), NCIndexing.BLOCK)


@pytest.fixture
def vp():
    return VictimNC(CacheGeometry(1024, 4), NCIndexing.PAGE, blocks_per_page=64)


class TestPolicyFlags:
    def test_no_inclusion(self, vb):
        assert vb.inclusion is InclusionPolicy.NONE

    def test_sram_latency_class(self, vb):
        assert not vb.is_dram


class TestAllocation:
    def test_never_allocates_on_fetch(self, vb):
        assert vb.on_fetch(0x10) is None
        assert vb.probe(0x10) is None

    def test_accepts_clean_victim(self, vb):
        accepted, ev = vb.accept_clean_victim(0x10)
        assert accepted and ev is None
        assert vb.probe(0x10) == NCState.CLEAN

    def test_accepts_dirty_victim(self, vb):
        accepted, ev = vb.accept_dirty_victim(0x10)
        assert accepted and ev is None
        assert vb.probe(0x10) == NCState.DIRTY

    def test_dirty_refresh_of_existing_clean(self, vb):
        vb.accept_clean_victim(0x10)
        accepted, ev = vb.accept_dirty_victim(0x10)
        assert accepted and ev is None
        assert vb.probe(0x10) == NCState.DIRTY
        assert len(vb) == 1

    def test_set_overflow_reports_eviction(self, vb):
        # a fifth same-set block overflows the 4-way set
        for i in range(4):
            vb.accept_clean_victim(i * 4)
        accepted, ev = vb.accept_dirty_victim(16)
        assert accepted
        assert ev is not None and ev.block == 0  # LRU of set 0
        assert not ev.dirty

    def test_eviction_carries_dirtiness(self, vb):
        vb.accept_dirty_victim(0)
        for i in range(1, 5):
            _, ev = vb.accept_clean_victim(i * 4)
        assert ev is not None and ev.block == 0 and ev.dirty


class TestHits:
    def test_read_hit_removes_line(self, vb):
        vb.accept_clean_victim(0x10)
        assert vb.service_read(0x10) == NCState.CLEAN
        assert vb.probe(0x10) is None  # exclusive swap

    def test_write_hit_removes_line(self, vb):
        vb.accept_dirty_victim(0x10)
        assert vb.service_write(0x10) == NCState.DIRTY
        assert vb.probe(0x10) is None

    def test_miss_returns_none(self, vb):
        assert vb.service_read(0x10) is None
        assert vb.service_write(0x10) is None


class TestCoherence:
    def test_invalidate_returns_state(self, vb):
        vb.accept_dirty_victim(0x10)
        assert vb.invalidate(0x10) == NCState.DIRTY
        assert vb.invalidate(0x10) is None

    def test_downgrade(self, vb):
        vb.accept_dirty_victim(0x10)
        assert vb.downgrade(0x10)
        assert vb.probe(0x10) == NCState.CLEAN
        assert not vb.downgrade(0x10)  # already clean

    def test_flush_page(self, vb):
        vb.accept_clean_victim(64)  # page 1, offset 0
        vb.accept_dirty_victim(65)
        vb.accept_clean_victim(130)  # page 2
        flushed = dict(vb.flush_page(1, 6))
        assert flushed == {64: False, 65: True}
        assert vb.probe(130) is not None


class TestIndexing:
    def test_block_indexing_spreads_a_page(self, vb):
        sets = {vb.set_index_of(b) for b in range(16)}
        assert len(sets) == 4  # blocks of one page spread over all sets

    def test_page_indexing_concentrates_a_page(self, vp):
        sets = {vp.set_index_of(b) for b in range(64)}
        assert sets == {0}  # one page -> one set

    def test_page_indexing_separates_pages(self, vp):
        assert vp.set_index_of(0) != vp.set_index_of(64)

    def test_set_blocks_lists_residents(self, vp):
        vp.accept_clean_victim(3)
        vp.accept_clean_victim(7)
        assert sorted(vp.set_blocks(0)) == [3, 7]

    def test_page_set_overflow(self, vp):
        """5 blocks of the same page overflow its single 4-way set."""
        evictions = []
        for off in range(5):
            _, ev = vp.accept_clean_victim(off)
            if ev:
                evictions.append(ev.block)
        assert evictions == [0]
