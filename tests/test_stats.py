"""Unit tests for event counters and their derived totals."""

from __future__ import annotations

import pytest

from repro.stats import Counters, merge


def populated() -> Counters:
    c = Counters()
    c.reads = 100
    c.writes = 40
    c.l1_read_hits = 60
    c.l1_write_hits = 20
    c.local_read_misses = 10
    c.local_write_misses = 5
    c.read_cluster_hits = 5
    c.read_nc_hits = 10
    c.read_pc_hits = 5
    c.read_remote = 10
    c.write_cluster_hits = 3
    c.write_nc_hits = 4
    c.write_pc_hits = 2
    c.write_remote = 6
    c.remote_capacity = 9
    c.remote_necessary = 7
    c.writebacks_remote = 8
    c.pc_flush_writebacks = 2
    return c


class TestTotals:
    def test_refs(self):
        assert populated().refs == 140

    def test_read_remote_misses(self):
        assert populated().read_remote_misses == 30

    def test_write_remote_misses(self):
        assert populated().write_remote_misses == 15

    def test_cluster_misses(self):
        c = populated()
        assert c.cluster_misses_read == 10
        assert c.cluster_misses_write == 6
        assert c.remote_accesses == 16

    def test_traffic_blocks(self):
        # reads + writes that crossed + write-backs + PC flush write-backs
        assert populated().traffic_blocks == 10 + 6 + 8 + 2

    def test_check_passes_on_consistent(self):
        populated().check()

    def test_check_catches_read_mismatch(self):
        c = populated()
        c.reads += 1
        with pytest.raises(AssertionError):
            c.check()

    def test_check_catches_classification_mismatch(self):
        c = populated()
        c.remote_capacity += 1
        with pytest.raises(AssertionError):
            c.check()


class TestCopyMerge:
    def test_copy_is_independent(self):
        a = populated()
        b = a.copy()
        b.reads += 1
        assert a.reads == 100

    def test_merge_adds_elementwise(self):
        a, b = populated(), populated()
        m = merge(a, b)
        assert m.reads == 200
        assert m.traffic_blocks == 2 * a.traffic_blocks

    def test_as_dict_round_trip(self):
        a = populated()
        d = a.as_dict()
        assert d["reads"] == 100
        assert Counters(**d).refs == a.refs

    def test_empty_counters_are_consistent(self):
        Counters().check()
