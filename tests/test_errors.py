"""Tests for the exception hierarchy."""

from __future__ import annotations

import pytest

from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    TraceError,
    UnknownBenchmarkError,
    UnknownSystemError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc", [ConfigurationError, ProtocolError, TraceError]
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_unknown_system_is_configuration_error(self):
        assert issubclass(UnknownSystemError, ConfigurationError)
        assert issubclass(UnknownBenchmarkError, ConfigurationError)

    def test_one_except_catches_everything(self):
        for exc in (
            ConfigurationError("x"),
            ProtocolError("x"),
            TraceError("x"),
            UnknownSystemError("x", ["a"]),
            UnknownBenchmarkError("x", ["a"]),
        ):
            with pytest.raises(ReproError):
                raise exc


class TestMessages:
    def test_unknown_system_lists_known(self):
        err = UnknownSystemError("warp", ["base", "vb"])
        assert "warp" in str(err)
        assert "base" in str(err) and "vb" in str(err)
        assert err.name == "warp"
        assert err.known == ["base", "vb"]

    def test_unknown_benchmark_lists_known(self):
        err = UnknownBenchmarkError("linpack", ["lu", "fft"])
        assert "linpack" in str(err) and "lu" in str(err)
