"""Feature extraction: every trace family, scalar == vectorised path."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.sim.runner import get_trace
from repro.surrogate.explore import _FAMILY_TRAITS, Candidate
from repro.surrogate.features import (
    FEATURE_NAMES,
    N_FEATURES,
    TRACE_FEATURE_NAMES,
    cell_features,
    config_scalars,
    feature_dict,
    trace_features,
)
from repro.system.builder import system_config
from repro.trace.synthetic import BENCHMARK_NAMES

REFS = 4000


@pytest.fixture(scope="module")
def tf_barnes():
    return trace_features(get_trace("barnes", refs=REFS, seed=1))


class TestTraceFeatures:
    @pytest.mark.parametrize("bench", BENCHMARK_NAMES)
    def test_every_family_yields_finite_features(self, bench):
        tf = trace_features(get_trace(bench, refs=REFS, seed=1))
        vec = tf.vector()
        assert vec.shape == (len(TRACE_FEATURE_NAMES),)
        assert np.all(np.isfinite(vec))
        d = tf.chars.feature_dict()
        assert tuple(d) == TRACE_FEATURE_NAMES
        assert 0.0 <= d["write_fraction"] <= 1.0
        assert 0.0 <= d["remote_fraction"] <= 1.0
        assert 0.0 < d["hot_block_fraction"] <= 1.0
        assert d["log_distinct_blocks"] > 0.0
        assert tf.dataset_bytes > 0
        assert tf.footprint_bytes > 0

    def test_hot_block_fraction_orders_skewed_traces(self):
        # raytrace is built hot-spot heavy, fft is a regular all-to-all:
        # the hot-block mass must reflect that
        hot = trace_features(get_trace("raytrace", refs=REFS, seed=1))
        flat = trace_features(get_trace("fft", refs=REFS, seed=1))
        assert (
            hot.chars.feature_dict()["hot_block_fraction"]
            > flat.chars.feature_dict()["hot_block_fraction"]
        )


class TestCellFeatures:
    def test_vector_is_named_and_finite(self, tf_barnes):
        vec = cell_features(system_config("vbp5"), tf_barnes)
        assert vec.shape == (N_FEATURES,)
        assert np.all(np.isfinite(vec))
        named = feature_dict(system_config("vbp5"), tf_barnes)
        assert tuple(named) == FEATURE_NAMES
        assert named["bias"] == 1.0
        assert named["pc_enabled"] == 1.0
        assert 0.0 < named["pc_coverage"] <= 1.0

    def test_infinite_nc_coverage_saturates(self, tf_barnes):
        named = feature_dict(system_config("ncs"), tf_barnes)
        assert named["nc_coverage"] == 1.0
        assert named["nc_coverage_sq"] == 1.0

    def test_no_nc_no_pc_features_are_zero(self, tf_barnes):
        named = feature_dict(system_config("base"), tf_barnes)
        for key in ("has_nc", "nc_coverage", "pc_enabled", "pc_coverage",
                    "threshold_inv"):
            assert named[key] == 0.0

    @pytest.mark.parametrize("family", sorted(_FAMILY_TRAITS))
    def test_family_traits_match_real_configs(self, family, tf_barnes):
        """The hardcoded ranking-path traits must mirror system_config."""
        cand = Candidate(
            family=family,
            nc_size=0 if family in ("base", "p")
            else (512 * 1024 if family == "ncd" else 16 * 1024),
            pc_denom=5 if family in ("p", "ncp", "vbp", "vpp", "vxp") else 0,
            threshold=4 if family in ("p", "ncp", "vbp", "vpp", "vxp") else 0,
            remote_latency=30,
        )
        s = config_scalars(cand.to_config(), tf_barnes.dataset_bytes)
        has_nc, victim, page_indexed, dram = _FAMILY_TRAITS[family]
        assert s.has_nc == has_nc
        assert s.nc_victim == victim
        assert s.nc_page_indexed == page_indexed
        assert s.nc_dram == dram
        if cand.nc_size:
            assert s.nc_blocks == cand.nc_size / 64
        assert s.pc_enabled == (1.0 if cand.pc_denom else 0.0)
        if cand.pc_denom:
            assert s.pc_bytes == pytest.approx(
                tf_barnes.dataset_bytes / cand.pc_denom
            )
            assert s.threshold == cand.threshold

    def test_scalar_path_equals_vector_path(self, tf_barnes):
        """cell_features routes through feature_matrix — bit-identical to
        the arrays the ranking path builds for the same candidate."""
        from repro.surrogate.explore import _candidate_arrays
        from repro.surrogate.features import feature_matrix

        cands = [
            Candidate("vbp", 16 * 1024, 5, 4, 30),
            Candidate("nc", 16 * 1024, 0, 0, 30),
            Candidate("base", 0, 0, 0, 30),
            Candidate("ncd", 512 * 1024, 0, 0, 30),
        ]
        arrays = _candidate_arrays(cands)
        x = feature_matrix(
            tf_barnes,
            has_nc=arrays["has_nc"],
            nc_victim=arrays["nc_victim"],
            nc_page_indexed=arrays["nc_page_indexed"],
            nc_dram=arrays["nc_dram"],
            nc_blocks=arrays["nc_blocks"],
            pc_enabled=arrays["pc_enabled"],
            pc_bytes=arrays["pc_enabled"] * arrays["denom_inv"]
            * tf_barnes.dataset_bytes,
            threshold=arrays["threshold"],
        )
        for i, cand in enumerate(cands):
            scalar = cell_features(cand.to_config(), tf_barnes)
            assert scalar.tobytes() == x[i].tobytes(), cand.label

    def test_log_features_use_log2(self, tf_barnes):
        d = tf_barnes.chars.feature_dict()
        assert d["log_distinct_blocks"] == pytest.approx(
            math.log2(1.0 + tf_barnes.chars.distinct_blocks)
        )
