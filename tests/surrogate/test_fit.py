"""Calibration: determinism, holdout validity, model round-trips."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.manifest import config_digest
from repro.sim.parallel import run_parallel_sweep
from repro.surrogate import (
    SurrogateError,
    SurrogateModel,
    fit_surrogate,
    holdout_configs,
    training_configs,
    validate_model,
)
from repro.surrogate.fit import (
    build_dataset,
    error_summary,
    event_rates,
    trace_features_for,
)

REFS = 5000
BENCHES = ["barnes", "radix"]


@pytest.fixture(scope="module")
def small_sweep():
    # a small but full-rank training matrix: every config feature varies
    configs = training_configs(nc_sizes=(4096, 65536), thresholds=(2, 16))
    results = run_parallel_sweep(configs, BENCHES, refs=REFS, seed=1)
    tfs = trace_features_for(BENCHES, refs=REFS, seed=1)
    return configs, results, tfs


class TestFitDeterminism:
    def test_same_sweep_bit_identical_coefficients(self, small_sweep):
        configs, results, tfs = small_sweep
        m1 = fit_surrogate(results, tfs)
        m2 = fit_surrogate(results, tfs)
        assert m1.coef.tobytes() == m2.coef.tobytes()
        assert m1.digest() == m2.digest()

    def test_row_order_does_not_matter(self, small_sweep):
        configs, results, tfs = small_sweep
        m1 = fit_surrogate(results, tfs)
        shuffled = dict(reversed(list(results.items())))
        m2 = fit_surrogate(shuffled, tfs)
        assert m1.coef.tobytes() == m2.coef.tobytes()

    def test_refit_from_rerun_sweep_is_identical(self, small_sweep):
        configs, results, tfs = small_sweep
        again = run_parallel_sweep(configs, BENCHES, refs=REFS, seed=1)
        assert fit_surrogate(results, tfs).digest() == \
            fit_surrogate(again, tfs).digest()


class TestDataset:
    def test_shapes_and_keys(self, small_sweep):
        _configs, results, tfs = small_sweep
        x, y, keys = build_dataset(results, tfs)
        assert x.shape[0] == y.shape[0] == len(results)
        assert y.shape[1] == 5
        assert keys == sorted(results)

    def test_event_rates_are_per_reference(self, small_sweep):
        _configs, results, tfs = small_sweep
        r = next(iter(results.values()))
        rates = event_rates(r)
        assert rates.shape == (5,)
        assert np.all(rates >= 0.0)
        assert np.all(rates <= 1.0 + r.counters.pc_relocations)

    def test_under_determined_fit_is_clean_error(self, small_sweep):
        _configs, results, tfs = small_sweep
        few = dict(list(results.items())[:3])
        with pytest.raises(SurrogateError, match="under-determined"):
            fit_surrogate(few, tfs)


class TestValidation:
    def test_holdout_configs_disjoint_from_training(self):
        train = training_configs()
        hold = holdout_configs()
        assert not set(train) & set(hold)
        train_digests = {config_digest(c) for c in train.values()}
        for name, config in hold.items():
            assert config_digest(config) not in train_digests, name

    def test_validate_and_summarise(self, small_sweep):
        _configs, results, tfs = small_sweep
        model = fit_surrogate(results, tfs)
        cells = validate_model(model, results, tfs)
        assert len(cells) == len(results)
        summary = error_summary(cells)
        assert summary["cells"] == len(cells)
        # in-sample predictions of a full-rank linear fit must be close
        assert summary["median_abs_total_error_pct"] < 10.0
        for comp, err in summary["median_abs_error_cycles_per_ref"].items():
            assert err >= 0.0, comp

    def test_empty_summary_shape(self):
        summary = error_summary([])
        assert summary["cells"] == 0
        assert summary["median_abs_total_error_pct"] == 0.0


class TestModelSerialisation:
    def test_round_trip(self, small_sweep, tmp_path):
        _configs, results, tfs = small_sweep
        model = fit_surrogate(results, tfs)
        path = tmp_path / "model.json"
        model.save(str(path))
        loaded = SurrogateModel.load(str(path))
        assert loaded.digest() == model.digest()
        assert loaded.coef.tobytes() == model.coef.tobytes()

    def test_malformed_document_is_clean_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"model_version": 999}')
        with pytest.raises(SurrogateError, match="unsupported"):
            SurrogateModel.load(str(path))
        path.write_text("not json")
        with pytest.raises(SurrogateError, match="cannot read"):
            SurrogateModel.load(str(path))

    def test_coefficient_table_names_every_feature(self, small_sweep):
        _configs, results, tfs = small_sweep
        model = fit_surrogate(results, tfs)
        table = model.coefficient_table()
        assert [name for name, _row in table] == list(model.feature_names)
