"""Design-space search: enumeration, Pareto math, serial == parallel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.surrogate import (
    Candidate,
    DesignSpace,
    check_surrogate,
    explore,
    pareto_frontier,
)
from repro.surrogate.explore import (
    explore_json,
    explore_report,
    select_frontier,
)

REFS = 5000
BENCHES = ["barnes", "radix"]

SMALL_SPACE = DesignSpace(
    families=("base", "nc", "vb", "vbp"),
    nc_sizes=(8 * 1024, 32 * 1024),
    pc_denoms=(5, 3),
    thresholds=(2, 8),
    remote_latencies=(30, 60),
)


class TestDesignSpace:
    def test_size_matches_enumeration(self):
        cands = SMALL_SPACE.candidates()
        assert len(cands) == SMALL_SPACE.size
        assert len(set(cands)) == len(cands)

    def test_axes_only_where_applicable(self):
        for c in SMALL_SPACE.candidates():
            if c.family == "base":
                assert c.nc_size == 0 and c.pc_denom == 0 and c.threshold == 0
            if c.family == "vb":
                assert c.nc_size > 0 and c.pc_denom == 0
            if c.family == "vbp":
                assert c.nc_size > 0 and c.pc_denom > 0 and c.threshold > 0

    def test_unknown_family_is_clean_error(self):
        with pytest.raises(ConfigurationError, match="unknown design-space"):
            DesignSpace(families=("base", "warp"))

    def test_sample_is_deterministic_subset(self):
        s1 = SMALL_SPACE.sample(10, seed=7)
        s2 = SMALL_SPACE.sample(10, seed=7)
        assert s1 == s2
        assert len(set(s1)) == 10
        assert set(s1) <= set(SMALL_SPACE.candidates())
        assert SMALL_SPACE.sample(10, seed=8) != s1

    def test_sample_larger_than_space_is_full_space(self):
        assert SMALL_SPACE.sample(10_000) == SMALL_SPACE.candidates()

    def test_candidates_materialise_to_real_configs(self):
        for c in SMALL_SPACE.sample(8, seed=3):
            config = c.to_config()
            assert config.latency.remote_access == c.remote_latency
            if c.threshold:
                assert config.pc.initial_threshold == c.threshold

    def test_labels_are_unique(self):
        labels = [c.label for c in SMALL_SPACE.candidates()]
        assert len(set(labels)) == len(labels)


class TestParetoMath:
    def test_frontier_is_non_dominated(self):
        rng = np.random.default_rng(1)
        cost = rng.uniform(0, 100, 200)
        stall = rng.uniform(0, 10, 200)
        idx = pareto_frontier(cost, stall)
        assert idx, "non-empty inputs must yield a frontier"
        chosen = set(idx)
        for i in idx:
            dominated = (cost <= cost[i]) & (stall < stall[i])
            assert not np.any(dominated), i
        # frontier is sorted by cost and strictly improving in stall
        assert list(idx) == sorted(idx, key=lambda i: (cost[i], stall[i]))
        stalls = [stall[i] for i in idx]
        assert stalls == sorted(stalls, reverse=True)
        # every non-frontier point is dominated by some frontier point
        for j in range(len(cost)):
            if j in chosen:
                continue
            assert any(
                cost[i] <= cost[j] and stall[i] <= stall[j] for i in idx
            ), j

    def test_select_frontier_keeps_endpoints(self):
        frontier = list(range(20))
        picked = select_frontier(frontier, 5)
        assert len(picked) == 5
        assert picked[0] == 0 and picked[-1] == 19
        assert select_frontier(frontier, 50) == frontier


class TestExploreEndToEnd:
    @pytest.fixture(scope="class")
    def outcome(self):
        return explore(
            SMALL_SPACE, BENCHES, refs=REFS, seed=1, jobs=1, frontier_max=4
        )

    def test_frontier_simulated_and_graded(self, outcome):
        assert outcome.n_ranked == SMALL_SPACE.size
        assert 0 < len(outcome.frontier) <= 4
        for e in outcome.frontier:
            assert e.simulated_stall is not None
            assert e.predicted_stall >= 0.0
        assert outcome.summary["cells"] == \
            len(outcome.frontier) * len(BENCHES)

    def test_serial_equals_parallel_frontier(self, outcome):
        parallel = explore(
            SMALL_SPACE, BENCHES, refs=REFS, seed=1, jobs=2, frontier_max=4
        )
        assert [e.label for e in parallel.frontier] == \
            [e.label for e in outcome.frontier]
        assert parallel.model.digest() == outcome.model.digest()
        for a, b in zip(parallel.frontier, outcome.frontier):
            assert a.predicted_stall == b.predicted_stall
            assert a.simulated_stall == b.simulated_stall

    def test_report_and_json_render(self, outcome):
        text = explore_report(outcome)
        assert "Pareto frontier" in text
        assert "per-component surrogate error" in text
        doc = explore_json(outcome)
        assert doc["kind"] == "explore"
        assert doc["n_ranked"] == SMALL_SPACE.size
        assert len(doc["frontier"]) == len(outcome.frontier)
        assert doc["model"]["digest"] == outcome.model.digest()
        import json

        json.dumps(doc)  # must be serialisable as-is

    def test_no_simulate_stops_after_ranking(self):
        out = explore(
            SMALL_SPACE, BENCHES, refs=REFS, seed=1, simulate_frontier=False
        )
        assert out.frontier and all(
            e.simulated_stall is None for e in out.frontier
        )
        assert out.summary["cells"] == 0
        assert "NOT simulated" in explore_report(out)


class TestCheckGate:
    def test_gate_passes_and_fails_on_thresholds(self):
        loose = {
            "max_median_abs_total_error_pct": 1000.0,
            "min_candidates_ranked": 1,
            "min_candidates_per_sec": 1,
        }
        doc, cells, failures = check_surrogate(
            loose, SMALL_SPACE, BENCHES, refs=REFS, seed=1
        )
        assert not failures and doc["passed"]
        assert cells, "holdout cells must be validated"
        assert doc["validation"]["cells"] == len(cells)

        strict = {
            "max_median_abs_error_cycles_per_ref": {"remote_miss": 0.0},
            "min_candidates_ranked": 10 ** 9,
            "min_candidates_per_sec": 10 ** 12,
        }
        doc, _cells, failures = check_surrogate(
            strict, SMALL_SPACE, BENCHES, refs=REFS, seed=1
        )
        assert not doc["passed"]
        assert any("remote_miss" in f for f in failures)
        assert any("ranked only" in f for f in failures)
        assert any("throughput" in f for f in failures)


class TestCandidateLabels:
    def test_label_round_trip_parts(self):
        c = Candidate("vbp", 16 * 1024, 5, 8, 60)
        assert c.label == "vbp5/nc16k/t8/r60"
        assert Candidate("base", 0, 0, 0, 30).label == "base"
