"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "vxp" in out and "radix" in out and "fig09" in out


class TestSimulate:
    def test_basic_run(self, capsys):
        assert main(["simulate", "vb", "lu", "--refs", "10000"]) == 0
        out = capsys.readouterr().out
        assert "vb / lu" in out
        assert "read_miss_ratio_pct" in out

    def test_unknown_system_is_clean_error(self, capsys):
        assert main(["simulate", "warp", "lu", "--refs", "5000"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_benchmark_is_clean_error(self, capsys):
        assert main(["simulate", "vb", "linpack", "--refs", "5000"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_overrides(self, capsys):
        assert main([
            "simulate", "vb", "lu", "--refs", "10000",
            "--cache-assoc", "4", "--nc-size", "1024", "--moesir",
        ]) == 0

    def test_pc_options(self, capsys):
        assert main([
            "simulate", "ncp5", "barnes", "--refs", "10000",
            "--threshold", "4", "--fixed-threshold",
            "--decrement-on-invalidation",
        ]) == 0


class TestSweep:
    def test_grid_output(self, capsys):
        assert main(["sweep", "base,vb", "lu", "--refs", "10000"]) == 0
        out = capsys.readouterr().out
        assert "base" in out and "vb" in out and "lu" in out

    @pytest.mark.parametrize("metric", ["miss", "stall", "traffic"])
    def test_metrics(self, capsys, metric):
        assert main(
            ["sweep", "base", "lu", "--refs", "8000", "--metric", metric]
        ) == 0


class TestExperiment:
    def test_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "Page relocation" in capsys.readouterr().out

    def test_unknown_name(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "available" in capsys.readouterr().err

    def test_fig04_tiny(self, capsys):
        assert main(["experiment", "fig04", "--refs", "6000"]) == 0
        assert "fig04" in capsys.readouterr().out


class TestTrace:
    def test_stats(self, capsys):
        assert main(["trace", "radix", "--refs", "10000", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "write fraction" in out

    def test_save(self, capsys, tmp_path):
        out_file = tmp_path / "t.npz"
        assert main(
            ["trace", "lu", "--refs", "10000", "--out", str(out_file)]
        ) == 0
        assert out_file.exists()

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as e:
            main(["--version"])
        assert e.value.code == 0


class TestSweepChart:
    def test_chart_mode(self, capsys):
        assert main(
            ["sweep", "base,vb", "lu", "--refs", "8000", "--metric",
             "stall", "--chart"]
        ) == 0
        out = capsys.readouterr().out
        assert "#" in out and "base" in out


class TestProfileFlags:
    def test_simulate_profile_prints_breakdown(self, capsys):
        assert main(
            ["simulate", "vb", "radix", "--refs", "10000", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "Eq. 1 stall attribution" in out
        assert "remote" in out and "nc_hit" in out

    def test_sweep_breakdown_metric(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert main(
            ["sweep", "base,vb", "radix", "--refs", "10000",
             "--metric", "breakdown"]
        ) == 0
        out = capsys.readouterr().out
        assert "Eq. 1 stall attribution — radix" in out
        assert "base" in out and "vb" in out and "(100%)" in out

    def test_sweep_breakdown_chart(self, capsys, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        assert main(
            ["sweep", "base,vb", "radix", "--refs", "10000",
             "--metric", "breakdown", "--chart"]
        ) == 0
        out = capsys.readouterr().out
        assert "Remote read stall attribution" in out and "@" in out


class TestTraceExport:
    def test_export_writes_valid_chrome_trace(self, capsys, tmp_path):
        from repro.obs.timeline import validate_chrome_trace

        out_file = tmp_path / "trace.json"
        assert main(
            ["trace", "export", "vpp5", "radix", "--refs", "10000",
             "--out", str(out_file)]
        ) == 0
        assert "trace events" in capsys.readouterr().out
        assert validate_chrome_trace(str(out_file)) == []

    def test_export_requires_system_and_benchmark(self, capsys):
        assert main(["trace", "export", "vpp5"]) == 2
        assert "usage" in capsys.readouterr().err

    def test_plain_trace_rejects_stray_positionals(self, capsys):
        assert main(["trace", "radix", "vb", "--refs", "5000"]) == 2
        assert "unexpected" in capsys.readouterr().err


class TestTop:
    def test_board_for_finished_sweep(self, capsys, tmp_path):
        run_dir = tmp_path / "run"
        assert main(
            ["sweep", "base", "lu", "--refs", "8000",
             "--resume", str(run_dir)]
        ) == 0
        capsys.readouterr()
        assert main(["top", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "1/1 done" in out and "complete" in out

    def test_missing_run_dir_warns(self, capsys, tmp_path):
        assert main(["top", str(tmp_path / "nope")]) == 0
        captured = capsys.readouterr()
        assert "no run.json" in captured.err


class TestPerfJson:
    def test_json_report_feeds_the_regression_gate(self, capsys, tmp_path):
        import json

        json_path = tmp_path / "perf.json"
        assert main(
            ["perf", "--systems", "base", "--benchmarks", "lu",
             "--refs", "8000", "--json", str(json_path)]
        ) == 0
        doc = json.loads(json_path.read_text())
        names = [b["name"] for b in doc["benchmarks"]]
        assert "perf::lu" in names and "perf::sweep_total" in names
        for bench in doc["benchmarks"]:
            assert bench["extra_info"]["refs_per_sec"] > 0
        # the exact shape scripts/check_bench_regression.py consumes
        import importlib.util
        import pathlib

        script = (pathlib.Path(__file__).parent.parent
                  / "scripts" / "check_bench_regression.py")
        spec = importlib.util.spec_from_file_location("cbr", script)
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        rates = mod.extract_refs_per_sec(str(json_path))
        assert rates["perf::lu"] > 0


_EXPLORE_SMALL = [
    "--benchmarks", "barnes,radix", "--refs", "5000", "--jobs", "1",
    "--families", "base,vb,vbp", "--nc-sizes", "8k,32k",
    "--pc-denoms", "5", "--thresholds", "2,8",
]


class TestExplore:
    def test_explore_reports_frontier_and_errors(self, capsys, tmp_path):
        import json

        json_path = tmp_path / "explore.json"
        assert main(
            ["explore", *_EXPLORE_SMALL, "--frontier-max", "3",
             "--json", str(json_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        assert "per-component surrogate error" in out
        doc = json.loads(json_path.read_text())
        assert doc["kind"] == "explore"
        assert doc["n_ranked"] == doc["space_size"]
        assert doc["frontier"]
        assert doc["validation"]["cells"] > 0

    def test_model_save_and_reuse(self, capsys, tmp_path):
        model_path = tmp_path / "model.json"
        assert main(
            ["explore", *_EXPLORE_SMALL, "--no-simulate",
             "--save-model", str(model_path)]
        ) == 0
        assert model_path.exists()
        assert main(
            ["explore", *_EXPLORE_SMALL, "--no-simulate",
             "--model", str(model_path)]
        ) == 0
        assert "pre-fitted" in capsys.readouterr().out

    def test_check_gates_against_baseline(self, capsys, tmp_path):
        import json

        loose = tmp_path / "loose.json"
        loose.write_text(json.dumps({
            "max_median_abs_total_error_pct": 1000.0,
            "min_candidates_ranked": 1,
        }))
        assert main(
            ["explore", "--check", *_EXPLORE_SMALL,
             "--baseline", str(loose)]
        ) == 0
        assert "within baseline" in capsys.readouterr().out

        strict = tmp_path / "strict.json"
        strict.write_text(json.dumps({
            "max_median_abs_total_error_pct": 0.0,
            "min_candidates_ranked": 10 ** 9,
        }))
        assert main(
            ["explore", "--check", *_EXPLORE_SMALL,
             "--baseline", str(strict)]
        ) == 1
        assert "FAILED" in capsys.readouterr().out

    def test_missing_baseline_is_clean_error(self, capsys, tmp_path):
        assert main(
            ["explore", "--check", *_EXPLORE_SMALL,
             "--baseline", str(tmp_path / "nope.json")]
        ) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_size_list_is_clean_error(self, capsys):
        assert main(
            ["explore", "--no-simulate", "--nc-sizes", "huge"]
        ) == 2
        assert "error:" in capsys.readouterr().err
