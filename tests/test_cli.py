"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestList:
    def test_lists_everything(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "vxp" in out and "radix" in out and "fig09" in out


class TestSimulate:
    def test_basic_run(self, capsys):
        assert main(["simulate", "vb", "lu", "--refs", "10000"]) == 0
        out = capsys.readouterr().out
        assert "vb / lu" in out
        assert "read_miss_ratio_pct" in out

    def test_unknown_system_is_clean_error(self, capsys):
        assert main(["simulate", "warp", "lu", "--refs", "5000"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_benchmark_is_clean_error(self, capsys):
        assert main(["simulate", "vb", "linpack", "--refs", "5000"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_overrides(self, capsys):
        assert main([
            "simulate", "vb", "lu", "--refs", "10000",
            "--cache-assoc", "4", "--nc-size", "1024", "--moesir",
        ]) == 0

    def test_pc_options(self, capsys):
        assert main([
            "simulate", "ncp5", "barnes", "--refs", "10000",
            "--threshold", "4", "--fixed-threshold",
            "--decrement-on-invalidation",
        ]) == 0


class TestSweep:
    def test_grid_output(self, capsys):
        assert main(["sweep", "base,vb", "lu", "--refs", "10000"]) == 0
        out = capsys.readouterr().out
        assert "base" in out and "vb" in out and "lu" in out

    @pytest.mark.parametrize("metric", ["miss", "stall", "traffic"])
    def test_metrics(self, capsys, metric):
        assert main(
            ["sweep", "base", "lu", "--refs", "8000", "--metric", metric]
        ) == 0


class TestExperiment:
    def test_table2(self, capsys):
        assert main(["experiment", "table2"]) == 0
        assert "Page relocation" in capsys.readouterr().out

    def test_unknown_name(self, capsys):
        assert main(["experiment", "fig99"]) == 2
        assert "available" in capsys.readouterr().err

    def test_fig04_tiny(self, capsys):
        assert main(["experiment", "fig04", "--refs", "6000"]) == 0
        assert "fig04" in capsys.readouterr().out


class TestTrace:
    def test_stats(self, capsys):
        assert main(["trace", "radix", "--refs", "10000", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "write fraction" in out

    def test_save(self, capsys, tmp_path):
        out_file = tmp_path / "t.npz"
        assert main(
            ["trace", "lu", "--refs", "10000", "--out", str(out_file)]
        ) == 0
        assert out_file.exists()

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as e:
            main(["--version"])
        assert e.value.code == 0


class TestSweepChart:
    def test_chart_mode(self, capsys):
        assert main(
            ["sweep", "base,vb", "lu", "--refs", "8000", "--metric",
             "stall", "--chart"]
        ) == 0
        out = capsys.readouterr().out
        assert "#" in out and "base" in out
