"""Tests for the wall-clock metrics registry: deterministic exposition,
histogram bucket semantics, thread safety, and snapshot persistence."""

from __future__ import annotations

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.obs.registry import (
    DEFAULT_TIME_BUCKETS,
    WallClockRegistry,
    merge_snapshots,
)

SRC = str(Path(__file__).resolve().parents[2] / "src")

#: builds the same little registry everywhere — order of operations is
#: deliberately shuffled between variants to pin order-independence
BUILD = """
from repro.obs.registry import WallClockRegistry
r = WallClockRegistry()
r.describe("repro_http_requests_total", "requests")
{body}
print(r.expose(), end="")
"""


def build_sample(order: int) -> WallClockRegistry:
    r = WallClockRegistry()
    r.describe("repro_http_requests_total", "requests")
    series = [
        {"endpoint": "/jobs", "method": "POST", "status": "202"},
        {"endpoint": "/jobs", "method": "GET", "status": "200"},
        {"endpoint": "/stats", "method": "GET", "status": "200"},
    ]
    if order:
        series = list(reversed(series))
    for labels in series:
        r.inc("repro_http_requests_total", labels=labels)
    r.set_gauge("repro_job_queue_depth", 4)
    for v in (0.003, 0.04, 2.0):
        r.observe("repro_http_request_seconds", v,
                  labels={"endpoint": "/jobs"})
    return r


class TestExposition:
    def test_insertion_order_does_not_change_exposition(self):
        assert build_sample(0).expose() == build_sample(1).expose()

    def test_label_names_sorted_within_series(self):
        r = WallClockRegistry()
        r.inc("x_total", labels={"zeta": "1", "alpha": "2"})
        line = [l for l in r.expose().splitlines() if l.startswith("x_total")]
        assert line == ['x_total{alpha="2",zeta="1"} 1']

    def test_byte_identical_across_two_processes(self):
        """The exposition is a pure function of the recorded values."""
        body = "\n".join([
            'r.inc("repro_http_requests_total", labels={"endpoint": "/jobs",'
            ' "method": "POST", "status": "202"}, amount=3)',
            'r.set_gauge("repro_job_queue_depth", 2)',
            'r.observe("repro_job_run_seconds", 0.75)',
        ])
        script = BUILD.format(body=body)

        def run() -> str:
            proc = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True, text=True,
                env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            )
            assert proc.returncode == 0, proc.stderr
            return proc.stdout

        first, second = run(), run()
        assert first == second
        assert "repro_http_requests_total" in first

    def test_escaping_and_types(self):
        r = WallClockRegistry()
        r.inc("e_total", labels={"reason": 'a"b\\c\nd'})
        text = r.expose()
        assert r'reason="a\"b\\c\nd"' in text
        assert "# TYPE e_total counter" in text

    def test_mismatched_label_names_rejected(self):
        r = WallClockRegistry()
        r.inc("x_total", labels={"a": "1"})
        with pytest.raises(ValueError):
            r.inc("x_total", labels={"b": "1"})

    def test_counters_cannot_decrease(self):
        r = WallClockRegistry()
        with pytest.raises(ValueError):
            r.inc("x_total", amount=-1)


class TestHistogram:
    def test_bucket_boundaries_are_upper_inclusive(self):
        r = WallClockRegistry()
        bounds = (0.1, 1.0, 10.0)
        # exactly on a bound lands IN that bucket; just above spills over
        for v in (0.1, 0.100001, 1.0, 10.0, 11.0):
            r.observe("h_seconds", v, buckets=bounds)
        text = r.expose()
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="1"} 3' in text      # cumulative
        assert 'h_seconds_bucket{le="10"} 4' in text
        assert 'h_seconds_bucket{le="+Inf"} 5' in text
        assert "h_seconds_count 5" in text

    def test_default_buckets_span_ms_to_minutes(self):
        assert DEFAULT_TIME_BUCKETS[0] <= 0.001
        assert DEFAULT_TIME_BUCKETS[-1] >= 300.0
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)

    def test_totals(self):
        r = WallClockRegistry()
        r.observe("h_seconds", 0.5, labels={"endpoint": "/a"})
        r.observe("h_seconds", 1.5, labels={"endpoint": "/b"})
        count, total = r.histogram_totals("h_seconds")
        assert count == 2
        assert total == pytest.approx(2.0)


class TestConcurrency:
    def test_eight_threads_incrementing(self):
        r = WallClockRegistry()
        n, per = 8, 2000

        def worker(i: int) -> None:
            for _ in range(per):
                r.inc("c_total", labels={"thread": str(i % 2)})
                r.observe("h_seconds", 0.01)

        threads = [threading.Thread(target=worker, args=(i,))
                   for i in range(n)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert r.counter_total("c_total") == n * per
        count, _ = r.histogram_totals("h_seconds")
        assert count == n * per


class TestSnapshot:
    def test_round_trip_is_exposition_identical(self):
        r = build_sample(0)
        copy = WallClockRegistry()
        copy.merge(r.snapshot())
        assert copy.expose() == r.expose()

    def test_snapshot_is_json_safe(self):
        json.dumps(build_sample(0).snapshot())

    def test_save_load(self, tmp_path):
        r = build_sample(0)
        path = tmp_path / "metrics.json"
        assert r.save(path)
        fresh = WallClockRegistry()
        assert fresh.load(path)
        assert fresh.expose() == r.expose()
        assert not WallClockRegistry().load(tmp_path / "missing.json")

    def test_load_merges_counters_additively(self, tmp_path):
        """Restart semantics: persisted counts + new counts, not replace."""
        path = tmp_path / "metrics.json"
        r = WallClockRegistry()
        r.inc("jobs_total", amount=5)
        r.save(path)
        survivor = WallClockRegistry()
        survivor.inc("jobs_total", amount=2)
        survivor.load(path)
        assert survivor.counter_total("jobs_total") == 7

    def test_merge_across_worker_processes(self):
        """Snapshots from separate processes aggregate deterministically."""
        script = BUILD.format(body=(
            'r.inc("cells_total", amount={n});'
            'r.observe("cell_seconds", {v});'
            'r.set_gauge("depth", {n})\n'
            'import json; print("SNAP" + json.dumps(r.snapshot()))'
        ))

        def snap(n: int, v: float) -> dict:
            proc = subprocess.run(
                [sys.executable, "-c",
                 script.replace("{n}", str(n)).replace("{v}", str(v))],
                capture_output=True, text=True,
                env={"PYTHONPATH": SRC, "PATH": "/usr/bin:/bin"},
            )
            assert proc.returncode == 0, proc.stderr
            line = [l for l in proc.stdout.splitlines()
                    if l.startswith("SNAP")][0]
            return json.loads(line[len("SNAP"):])

        merged = merge_snapshots([snap(3, 0.2), snap(4, 30.0)])
        assert merged.counter_total("cells_total") == 7
        count, total = merged.histogram_totals("cell_seconds")
        assert count == 2
        assert total == pytest.approx(30.2)
        # gauges: first snapshot's live value wins, never summed
        assert merged.gauge_value("depth") in (3, 4)

    def test_gauge_merge_prefers_live_value(self):
        r = WallClockRegistry()
        r.set_gauge("depth", 9)
        stale = WallClockRegistry()
        stale.set_gauge("depth", 1)
        r.merge(stale.snapshot())
        assert r.gauge_value("depth") == 9

    def test_bound_mismatch_skips_family(self):
        a = WallClockRegistry()
        a.observe("h_seconds", 0.5, buckets=(1.0, 2.0))
        b = WallClockRegistry()
        b.observe("h_seconds", 0.5, buckets=(5.0,))
        a.merge(b.snapshot())  # must not corrupt; incompatible family skipped
        count, _ = a.histogram_totals("h_seconds")
        assert count == 1
