"""Tests for wall-clock span tracing: recorder, JSONL sink, tree
connectivity, and the Chrome trace-event export."""

from __future__ import annotations

import json

from repro.obs.spans import (
    SPANS_NAME,
    SpanRecorder,
    load_spans,
    new_request_id,
    request_root_span_id,
    run_span_id,
    span_tree_problems,
    spans_to_chrome,
)
from repro.obs.timeline import validate_chrome_trace

T0 = 1_700_000_000.0


def test_request_ids_are_distinct_and_derivable():
    a, b = new_request_id(), new_request_id()
    assert a != b
    assert request_root_span_id("abc") == "req-abc"
    assert run_span_id("j1") == "run-j1"


def test_recorder_round_trip(tmp_path):
    sink = tmp_path / "run" / SPANS_NAME
    with SpanRecorder("rid", sink_path=sink, proc="service") as rec:
        root = rec.add("POST /jobs", T0, 0.5, span_id="req-rid")
        with rec.span("validate", parent_id=root):
            pass
        rec.add("queue-wait", T0 + 0.1, 0.2, parent_id=root, job_id="j1")
    spans = load_spans(tmp_path / "run")
    assert len(spans) == 3
    assert {s["trace_id"] for s in spans} == {"rid"}
    assert span_tree_problems(spans) == []
    by_name = {s["name"]: s for s in spans}
    assert by_name["queue-wait"]["parent_id"] == "req-rid"
    assert by_name["queue-wait"]["args"]["job_id"] == "j1"


def test_load_spans_finds_run_subdir(tmp_path):
    sink = tmp_path / "run" / SPANS_NAME
    with SpanRecorder("rid", sink_path=sink) as rec:
        rec.add("x", T0, 0.1)
    # both the run dir itself and its parent (the job dir) resolve
    assert len(load_spans(tmp_path / "run")) == 1
    assert len(load_spans(tmp_path)) == 1
    assert load_spans(tmp_path / "nothing-here") == []


def test_default_parent_connects_cross_process_spans(tmp_path):
    """The job manager parents to the HTTP root span it never saw."""
    root_id = request_root_span_id("rid")
    with SpanRecorder("rid", sink_path=tmp_path / SPANS_NAME,
                      proc="job-manager", default_parent=root_id) as rec:
        rec.add("queue-wait", T0, 0.2)
        rec.add_raw({
            "span_id": "w1", "parent_id": None, "name": "cell simulate",
            "t0_unix": T0 + 0.2, "dur_s": 0.7, "proc": "worker-0",
        })
    # the root itself arrives separately (the HTTP layer appends it)
    with SpanRecorder("rid", sink_path=tmp_path / SPANS_NAME,
                      proc="http") as rec:
        rec.add("POST /jobs", T0 - 0.1, 0.05, span_id=root_id)
    spans = load_spans(tmp_path)
    assert span_tree_problems(spans) == []
    raw = [s for s in spans if s["name"] == "cell simulate"][0]
    assert raw["trace_id"] == "rid"          # stamped by add_raw
    assert raw["parent_id"] == root_id       # default parent filled in


def test_torn_trailing_line_tolerated(tmp_path):
    path = tmp_path / SPANS_NAME
    with SpanRecorder("rid", sink_path=path) as rec:
        rec.add("ok", T0, 0.1)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write('{"span_id": "torn", "na')  # crash mid-append
    assert [s["name"] for s in load_spans(tmp_path)] == ["ok"]


def test_dangling_parent_reported():
    spans = [{"trace_id": "t", "span_id": "a", "parent_id": "ghost",
              "name": "x", "t0_unix": T0, "dur_s": 0.1, "proc": "p"}]
    problems = span_tree_problems(spans)
    assert problems and "ghost" in problems[0]


class TestChromeExport:
    def _spans(self):
        root = request_root_span_id("rid")
        return [
            {"trace_id": "rid", "span_id": root, "parent_id": None,
             "name": "POST /jobs", "t0_unix": T0, "dur_s": 0.9,
             "proc": "http"},
            {"trace_id": "rid", "span_id": "q1", "parent_id": root,
             "name": "queue-wait", "t0_unix": T0 + 0.01, "dur_s": 0.05,
             "proc": "job-manager"},
            {"trace_id": "rid", "span_id": "c1", "parent_id": root,
             "name": "cell simulate", "t0_unix": T0 + 0.06, "dur_s": 0.6,
             "proc": "worker-0", "args": {"system": "nc"}},
        ]

    def test_valid_and_wall_clock_domain(self, tmp_path):
        doc = spans_to_chrome(self._spans())
        assert validate_chrome_trace(doc) == []
        meta = doc["metadata"]
        assert meta["clock_domain"] == "wall-clock"
        assert meta["base_unix"] == T0
        assert meta["span_count"] == 3
        json.dumps(doc)  # fully serialisable

    def test_timestamps_relative_to_trace_start(self):
        events = [e for e in spans_to_chrome(self._spans())["traceEvents"]
                  if e["ph"] == "X"]
        by_name = {e["name"]: e for e in events}
        assert by_name["POST /jobs"]["ts"] == 0
        assert by_name["cell simulate"]["ts"] == 60_000  # 0.06 s in µs
        assert by_name["cell simulate"]["dur"] == 600_000
        assert all(e["dur"] >= 1 for e in events)  # visible in the viewer

    def test_processes_become_pids_with_names(self):
        doc = spans_to_chrome(self._spans())
        meta = [e for e in doc["traceEvents"] if e["ph"] == "M"]
        names = {e["args"]["name"] for e in meta}
        assert names == {"http", "job-manager", "worker-0"}
        pids = {e["pid"] for e in doc["traceEvents"]}
        assert pids == {1, 2, 3}

    def test_empty_input_keeps_envelope(self):
        doc = spans_to_chrome([])
        assert doc["traceEvents"] == []
        assert doc["displayTimeUnit"] == "ms"
        # the timeline validator (rightly) rejects an empty trace, which
        # is why `trace serve-export` refuses to export zero spans
        assert validate_chrome_trace(doc) == ["traceEvents is empty"]
