"""Property-based tests (hypothesis) on core data structures and on the
whole protocol engine under random workloads.

The protocol properties are the strongest correctness net in the suite:
for arbitrary access interleavings on arbitrary system configurations, the
machine must keep single-writer coherence, directory/owner consistency,
bounded cache occupancy, and exact reference accounting.
"""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.coherence.cache import SetAssocCache
from repro.params import CacheGeometry
from repro.rdc.adaptive import AdaptiveThreshold
from repro.rdc.pagecache import PageCache
from repro.stats import Counters, merge
from tests.conftest import Harness, addr, tiny_config

# --------------------------------------------------------------------------
# SetAssocCache vs. a reference model
# --------------------------------------------------------------------------


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["insert", "lookup", "remove"]),
                  st.integers(0, 63)),
        max_size=200,
    )
)
def test_cache_matches_reference_lru_model(ops):
    cache = SetAssocCache(CacheGeometry(1024, 2))  # 8 sets, 2 ways
    model = {s: [] for s in range(8)}  # set -> blocks in LRU order

    for op, block in ops:
        s = block & 7
        if op == "insert":
            if block in model[s]:
                continue  # caller contract: no duplicate inserts
            victim = cache.insert(block, 1)
            if len(model[s]) == 2:
                expected = model[s].pop(0)
                assert victim is not None and victim.block == expected
            else:
                assert victim is None
            model[s].append(block)
        elif op == "lookup":
            line = cache.lookup(block)
            if block in model[s]:
                assert line is not None and line.block == block
                model[s].remove(block)
                model[s].append(block)  # MRU
            else:
                assert line is None
        else:
            line = cache.remove(block)
            if block in model[s]:
                assert line is not None
                model[s].remove(block)
            else:
                assert line is None

    for s in range(8):
        assert [ln.block for ln in cache.set_lines(s)] == model[s]
        assert len(model[s]) <= 2


@given(blocks=st.lists(st.integers(0, 10_000), max_size=300))
def test_cache_never_exceeds_capacity(blocks):
    cache = SetAssocCache(CacheGeometry(1024, 4))
    for b in blocks:
        if cache.peek(b) is None:
            cache.insert(b, 1)
    assert len(cache) <= 16
    for s in range(cache.n_sets):
        assert len(cache.set_lines(s)) <= 4


# --------------------------------------------------------------------------
# PageCache LRM model
# --------------------------------------------------------------------------


@given(
    events=st.lists(
        st.tuples(st.integers(0, 12), st.booleans()), min_size=1, max_size=120
    )
)
def test_pagecache_respects_capacity_and_lrm(events):
    pc = PageCache(capacity_frames=4, blocks_per_page=8)
    last_miss = {}
    for now, (page, is_hit) in enumerate(events):
        if page in pc:
            if is_hit:
                pc.record_hit(page, now)
            else:
                pc.record_fill(page, 0, now)
            last_miss[page] = now
        else:
            evicted = pc.allocate(page, now)
            if evicted is not None:
                # the evicted page must have the stalest miss time
                assert last_miss[evicted.page] == min(
                    last_miss[f.page] for f in [evicted] + list(pc.frames())
                    if f.page in last_miss
                ) or last_miss[evicted.page] <= min(
                    last_miss.get(f.page, now) for f in pc.frames()
                )
                del last_miss[evicted.page]
            last_miss[page] = now
        assert len(pc) <= 4


# --------------------------------------------------------------------------
# Adaptive threshold: monotone, bounded growth
# --------------------------------------------------------------------------


@given(hits=st.lists(st.integers(0, 63), max_size=400))
def test_adaptive_threshold_growth_is_bounded(hits):
    t = AdaptiveThreshold(initial=8, increment=2, break_even=12, window=4)
    for h in hits:
        t.on_frame_reuse(h)
    assert t.value >= 8
    assert t.value <= 8 + 2 * (len(hits) // 4)
    assert t.adjustments == (t.value - 8) // 2


# --------------------------------------------------------------------------
# Counters algebra
# --------------------------------------------------------------------------


@given(st.lists(st.integers(0, 1000), min_size=4, max_size=4))
def test_counters_merge_commutes(vals):
    a, b = Counters(), Counters()
    a.reads, a.read_remote = vals[0], vals[1]
    b.reads, b.read_remote = vals[2], vals[3]
    ab, ba = merge(a, b), merge(b, a)
    assert ab.as_dict() == ba.as_dict()


# --------------------------------------------------------------------------
# Whole-engine protocol properties under random workloads
# --------------------------------------------------------------------------

_access = st.tuples(
    st.integers(0, 3),  # pid on the 2x2 tiny machine
    st.integers(0, 5),  # page
    st.integers(0, 63),  # block offset
    st.booleans(),  # write?
)


@settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    system=st.sampled_from(["base", "nc", "vb", "vp", "ncs", "ncd", "vbp5", "vxp5"]),
    accesses=st.lists(_access, min_size=1, max_size=300),
)
def test_protocol_invariants_hold_under_random_traffic(system, accesses):
    h = Harness(tiny_config(system))
    for i in range(6):
        h.home(i, i % 2)

    touched = set()
    for pid, page, off, is_write in accesses:
        a = addr(page, off)
        touched.add(a >> 6)
        if is_write:
            h.write(pid, a)
        else:
            h.read(pid, a)

    # 1. exact reference accounting
    h.counters.check()
    assert h.counters.refs == len(accesses)

    machine = h.machine
    for block in touched:
        # 2. single-writer: at most one dirty copy machine-wide
        assert machine.dirty_copies_of(block) <= 1
        # 3. the directory's owner really holds dirty data
        owner = machine.directory.owner(block)
        if owner is not None:
            assert machine.dirty_copies_of(block) == 1
            assert owner in machine.valid_copy_nodes(block)
        # 4. presence bits over-approximate residency (non-notifying)
        mask = machine.directory.presence_mask(block)
        for node in machine.valid_copy_nodes(block):
            page = block >> 6
            home = machine.placement.home_of(page)
            if node != home:
                assert (mask >> node) & 1, (
                    f"node {node} holds block {block:#x} without a presence bit"
                )


@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(accesses=st.lists(_access, min_size=1, max_size=200))
def test_final_write_value_location_is_tracked(accesses):
    """After any interleaving, a written block's dirty copy (if any) lives
    where the directory + snoop logic can find it: re-reading from another
    node must never raise and must leave memory consistent."""
    h = Harness(tiny_config("vbp5"))
    for i in range(6):
        h.home(i, i % 2)
    for pid, page, off, is_write in accesses:
        if is_write:
            h.write(pid, addr(page, off))
        else:
            h.read(pid, addr(page, off))
    # sweep: a reader from each node touches every written block
    for page in range(6):
        for off in (0, 21, 63):
            h.read(0, addr(page, off))
            h.read(2, addr(page, off))
    h.counters.check()
