"""Unit tests for configuration dataclasses and the latency model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.params import CacheGeometry, LatencyModel, NCConfig, NCKind, PCConfig, RelocationCounters, SystemConfig


class TestLatencyModel:
    def test_table2_defaults(self):
        lat = LatencyModel()
        assert lat.dram_access == 10
        assert lat.tag_check == 3
        assert lat.cache_to_cache == 1
        assert lat.remote_access == 30
        assert lat.page_relocation == 225

    def test_table1_composites(self):
        lat = LatencyModel()
        assert lat.sram_nc_hit == 1
        assert lat.sram_nc_miss == 30
        assert lat.dram_nc_hit == 13
        assert lat.dram_nc_miss == 33
        assert lat.pc_hit == 10

    def test_relocation_equivalent(self):
        assert LatencyModel().relocation_equivalent_misses == pytest.approx(7.5)

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigurationError):
            LatencyModel(remote_access=-1)

    def test_custom_latencies(self):
        lat = LatencyModel(dram_access=20, tag_check=5)
        assert lat.dram_nc_hit == 25


class TestCacheGeometry:
    def test_paper_l1(self):
        g = CacheGeometry(16 * 1024, 2)
        assert g.n_blocks == 256 and g.n_sets == 128

    def test_paper_nc(self):
        g = CacheGeometry(16 * 1024, 4)
        assert g.n_sets == 64

    def test_ncd(self):
        g = CacheGeometry(512 * 1024, 4)
        assert g.n_blocks == 8192

    @pytest.mark.parametrize(
        "size,assoc,block",
        [(0, 2, 64), (1024, 0, 64), (1000, 2, 64), (1024, 2, 63), (1024, 3, 64)],
    )
    def test_invalid_geometry(self, size, assoc, block):
        with pytest.raises(ConfigurationError):
            CacheGeometry(size, assoc, block)


class TestNCConfig:
    def test_default_is_none(self):
        assert NCConfig().kind is NCKind.NONE

    def test_infinite_flags(self):
        assert NCConfig(kind=NCKind.INFINITE_SRAM).is_infinite
        assert NCConfig(kind=NCKind.INFINITE_DRAM).is_dram
        assert not NCConfig(kind=NCKind.VICTIM).is_dram
        assert NCConfig(kind=NCKind.DRAM_FULL_INCLUSION, size=512 * 1024).is_dram

    def test_geometry_for_finite(self):
        nc = NCConfig(kind=NCKind.VICTIM, size=16 * 1024, assoc=4)
        assert nc.geometry(64).n_sets == 64

    def test_geometry_rejected_for_infinite(self):
        with pytest.raises(ConfigurationError):
            NCConfig(kind=NCKind.INFINITE_SRAM).geometry(64)

    def test_bad_finite_geometry_rejected(self):
        with pytest.raises(ConfigurationError):
            NCConfig(kind=NCKind.VICTIM, size=1000)


class TestPCConfig:
    def test_disabled_default(self):
        assert not PCConfig().enabled

    def test_needs_exactly_one_size(self):
        with pytest.raises(ConfigurationError):
            PCConfig(enabled=True)
        with pytest.raises(ConfigurationError):
            PCConfig(enabled=True, size_bytes=1024, fraction=0.2)

    def test_frames_from_bytes(self):
        pc = PCConfig(enabled=True, size_bytes=512 * 1024)
        assert pc.frames_for_dataset(10 << 20, 4096) == 128

    def test_frames_from_fraction(self):
        pc = PCConfig(enabled=True, fraction=0.2)
        assert pc.frames_for_dataset(1 << 20, 4096) == 51

    def test_frames_at_least_one(self):
        pc = PCConfig(enabled=True, fraction=0.001)
        assert pc.frames_for_dataset(4096, 4096) == 1

    def test_disabled_frames_zero(self):
        assert PCConfig().frames_for_dataset(1 << 20, 4096) == 0

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            PCConfig(enabled=True, fraction=1.5)


class TestSystemConfig:
    def test_paper_defaults(self):
        cfg = SystemConfig()
        assert cfg.n_procs == 32
        assert cfg.block_size == 64
        assert cfg.block_bits == 6
        assert cfg.page_bits == 12
        assert cfg.blocks_per_page == 64

    def test_node_of(self):
        cfg = SystemConfig()
        assert cfg.node_of(0) == 0
        assert cfg.node_of(4) == 1
        assert cfg.node_of(31) == 7
        with pytest.raises(ConfigurationError):
            cfg.node_of(32)

    def test_nc_set_counters_require_victim_nc(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(
                nc=NCConfig(kind=NCKind.DIRTY_INCLUSION),
                pc=PCConfig(
                    enabled=True,
                    fraction=0.2,
                    counters=RelocationCounters.NC_SET,
                ),
            )

    def test_with_returns_modified_copy(self):
        cfg = SystemConfig()
        cfg2 = cfg.with_(name="x")
        assert cfg2.name == "x" and cfg.name == "custom"

    def test_page_smaller_than_block_rejected(self):
        with pytest.raises(ConfigurationError):
            SystemConfig(cache=CacheGeometry(16 * 1024, 2, 64), page_size=32)
