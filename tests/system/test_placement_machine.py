"""Unit tests for page placement and machine-level inspection."""

from __future__ import annotations

from repro.coherence.states import MESIR
from repro.system.builder import build_machine, system_config
from repro.system.placement import FirstTouchPlacement


class TestFirstTouchPlacement:
    def test_first_touch_assigns(self):
        p = FirstTouchPlacement()
        assert p.touch(5, 2) == 2
        assert p.home_of(5) == 2

    def test_later_touch_keeps_home(self):
        p = FirstTouchPlacement()
        p.touch(5, 2)
        assert p.touch(5, 7) == 2

    def test_preset_wins(self):
        p = FirstTouchPlacement(preset={5: 3})
        assert p.touch(5, 0) == 3

    def test_unassigned_is_none(self):
        assert FirstTouchPlacement().home_of(9) is None

    def test_balance_metrics(self):
        p = FirstTouchPlacement()
        for page in range(6):
            p.touch(page, page % 2)
        assert p.n_pages() == 6
        assert p.pages_homed_at(0) == 3
        assert p.pages_homed_at(1) == 3


class TestMachineInspection:
    def test_node_of_pid(self):
        m = build_machine(system_config("base"))
        assert m.node_of_pid(0) is m.nodes[0]
        assert m.node_of_pid(31) is m.nodes[7]

    def test_l1_of(self):
        m = build_machine(system_config("base"))
        assert m.l1_of(5) is m.nodes[1].l1s[1]

    def test_dirty_copies_counts_l1(self):
        m = build_machine(system_config("base"))
        m.l1_of(0).insert(0x40, int(MESIR.M))
        assert m.dirty_copies_of(0x40) == 1
        assert m.dirty_copies_of(0x41) == 0

    def test_valid_copy_nodes(self):
        m = build_machine(system_config("base"))
        m.l1_of(0).insert(0x40, int(MESIR.S))
        m.l1_of(4).insert(0x40, int(MESIR.R))
        assert m.valid_copy_nodes(0x40) == {0, 1}

    def test_valid_copy_sees_nc(self):
        m = build_machine(system_config("vb"))
        m.nodes[2].nc.accept_clean_victim(0x40)
        assert m.valid_copy_nodes(0x40) == {2}
