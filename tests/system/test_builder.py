"""Unit tests for the named-system registry and machine construction."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, UnknownSystemError
from repro.params import (
    DEFAULT_INITIAL_THRESHOLD,
    NCIndexing,
    NCKind,
    RelocationCounters,
    ThresholdPolicy,
)
from repro.rdc.adaptive import AdaptiveThreshold, FixedThreshold
from repro.rdc.dram import FullInclusionDramNC
from repro.rdc.infinite import InfiniteNC
from repro.rdc.none import NullNC
from repro.rdc.sram import DirtyInclusionNC
from repro.rdc.victim import VictimNC
from repro.system.builder import (
    SYSTEM_NAMES,
    build_machine,
    parse_system_name,
    system_config,
)


class TestNameParsing:
    @pytest.mark.parametrize("name", SYSTEM_NAMES)
    def test_all_registry_names_parse(self, name):
        prefix, frac = parse_system_name(name)
        assert prefix == name and frac is None

    def test_fraction_suffix(self):
        assert parse_system_name("ncp5") == ("ncp", 5)
        assert parse_system_name("vbp9") == ("vbp", 9)
        assert parse_system_name("vxp7") == ("vxp", 7)
        assert parse_system_name("p5") == ("p", 5)

    def test_case_insensitive(self):
        assert parse_system_name("NCD") == ("ncd", None)
        assert parse_system_name(" NCS ") == ("ncs", None)

    def test_unknown_name(self):
        with pytest.raises(UnknownSystemError):
            parse_system_name("bogus")

    def test_suffix_on_pc_less_system(self):
        with pytest.raises(ConfigurationError):
            parse_system_name("vb5")


class TestSystemConfigs:
    def test_base(self):
        cfg = system_config("base")
        assert cfg.nc.kind is NCKind.NONE and not cfg.pc.enabled

    def test_nc(self):
        cfg = system_config("nc")
        assert cfg.nc.kind is NCKind.DIRTY_INCLUSION
        assert cfg.nc.size == 16 * 1024 and cfg.nc.assoc == 4

    def test_vb_vp_indexing(self):
        assert system_config("vb").nc.indexing is NCIndexing.BLOCK
        assert system_config("vp").nc.indexing is NCIndexing.PAGE

    def test_ncs_dinf(self):
        assert system_config("ncs").nc.kind is NCKind.INFINITE_SRAM
        assert system_config("dinf").nc.kind is NCKind.INFINITE_DRAM

    def test_ncd_is_512k_dram(self):
        cfg = system_config("ncd")
        assert cfg.nc.kind is NCKind.DRAM_FULL_INCLUSION
        assert cfg.nc.size == 512 * 1024

    def test_pc_systems_default_512k(self):
        cfg = system_config("ncp")
        assert cfg.pc.enabled and cfg.pc.size_bytes == 512 * 1024

    def test_pc_fraction_suffix(self):
        cfg = system_config("vbp5")
        assert cfg.pc.fraction == pytest.approx(1 / 5)
        assert cfg.pc.size_bytes is None

    def test_vxp_uses_nc_set_counters(self):
        cfg = system_config("vxp5")
        assert cfg.pc.counters is RelocationCounters.NC_SET
        assert cfg.nc.indexing is NCIndexing.PAGE

    def test_directory_counters_for_others(self):
        for name in ("ncp5", "vbp5", "vpp5", "p5"):
            assert system_config(name).pc.counters is RelocationCounters.DIRECTORY

    def test_threshold_overrides(self):
        cfg = system_config(
            "ncp5",
            threshold_policy=ThresholdPolicy.FIXED,
            initial_threshold=16,
        )
        assert cfg.pc.threshold_policy is ThresholdPolicy.FIXED
        assert cfg.pc.initial_threshold == 16

    def test_default_threshold_is_scaled(self):
        assert system_config("ncp5").pc.initial_threshold == DEFAULT_INITIAL_THRESHOLD

    def test_cache_and_nc_overrides(self):
        cfg = system_config("vb", cache_assoc=4, nc_size=1024)
        assert cfg.cache.assoc == 4 and cfg.nc.size == 1024

    def test_machine_shape_overrides(self):
        cfg = system_config("base", n_nodes=2, procs_per_node=2)
        assert cfg.n_procs == 4


class TestBuildMachine:
    @pytest.mark.parametrize(
        "name,nc_type",
        [
            ("base", NullNC),
            ("nc", DirtyInclusionNC),
            ("vb", VictimNC),
            ("vp", VictimNC),
            ("ncs", InfiniteNC),
            ("dinf", InfiniteNC),
            ("ncd", FullInclusionDramNC),
        ],
    )
    def test_nc_instantiation(self, name, nc_type):
        m = build_machine(system_config(name))
        assert all(isinstance(n.nc, nc_type) for n in m.nodes)

    def test_nodes_and_caches(self):
        m = build_machine(system_config("base"))
        assert len(m.nodes) == 8
        assert all(n.n_procs == 4 for n in m.nodes)

    def test_fresh_ncs_per_node(self):
        m = build_machine(system_config("vb"))
        assert m.nodes[0].nc is not m.nodes[1].nc

    def test_pc_sizing_from_fraction(self):
        m = build_machine(system_config("ncp5"), dataset_bytes=10 << 20)
        assert m.nodes[0].pc.capacity == (10 << 20) // 5 // 4096

    def test_pc_sizing_from_bytes(self):
        m = build_machine(system_config("ncp"), dataset_bytes=10 << 20)
        assert m.nodes[0].pc.capacity == 128

    def test_fraction_pc_requires_dataset(self):
        with pytest.raises(ConfigurationError):
            build_machine(system_config("ncp5"))

    def test_adaptive_threshold_window(self):
        m = build_machine(system_config("ncp"), dataset_bytes=10 << 20)
        t = m.nodes[0].threshold
        assert isinstance(t, AdaptiveThreshold)
        assert t.window == 2 * m.nodes[0].pc.capacity

    def test_fixed_threshold(self):
        cfg = system_config("ncp", threshold_policy=ThresholdPolicy.FIXED)
        m = build_machine(cfg, dataset_bytes=1 << 20)
        assert isinstance(m.nodes[0].threshold, FixedThreshold)

    def test_vxp_gets_nc_counters(self):
        m = build_machine(system_config("vxp5"), dataset_bytes=1 << 20)
        assert m.nodes[0].nc_counters is not None
        assert m.nodes[0].nc_counters.n_sets == 64
        assert m.dir_counters is None

    def test_directory_counter_systems(self):
        m = build_machine(system_config("ncp5"), dataset_bytes=1 << 20)
        assert m.dir_counters is not None
        assert m.nodes[0].nc_counters is None

    def test_no_pc_no_threshold(self):
        m = build_machine(system_config("vb"))
        assert m.nodes[0].pc is None and m.nodes[0].threshold is None
