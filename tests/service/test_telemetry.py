"""Tests for the wall-clock telemetry pipeline across the service:
``/metrics`` exposition, request-id propagation, the request→job→cell
span tree, restart persistence of counters, and bit-identity of results
with telemetry on versus off."""

from __future__ import annotations

import asyncio
import json
import sys
import time
from pathlib import Path

import pytest

from repro.obs.manifest import counters_digest, manifest_core
from repro.obs.registry import METRICS_CONTENT_TYPE, WallClockRegistry
from repro.obs.spans import (
    SpanRecorder,
    load_spans,
    request_root_span_id,
    span_tree_problems,
    spans_to_chrome,
)
from repro.obs.timeline import validate_chrome_trace
from repro.service.jobs import JobManager
from repro.sim.checkpoint import iter_journal_lines
from repro.sim.parallel import run_parallel_sweep
from repro.sim.runner import clear_trace_cache, resolve_sweep_configs
from tests.service.test_app import LiveServer

sys.path.insert(0, str(Path(__file__).resolve().parents[2] / "scripts"))
from check_metrics_format import check as check_prometheus  # noqa: E402

REFS = 2_000
SPEC = {"systems": ["vb"], "benchmarks": ["fft"], "refs": REFS, "seed": 5,
        "scale": 0.02}


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
    clear_trace_cache()
    yield
    clear_trace_cache()


@pytest.fixture()
def server(tmp_path):
    with LiveServer(tmp_path / "svc") as s:
        yield s


def raw_request(port, method, path, body=None, headers=None):
    """Like LiveServer.request, but with caller-controlled headers."""

    async def go():
        payload = json.dumps(body).encode() if body is not None else b""
        extra = "".join(f"{k}: {v}\r\n" for k, v in (headers or {}).items())
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: t\r\n{extra}"
            f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
        ).encode()
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            writer.write(head + payload)
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 30)
        finally:
            writer.close()
        header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
        status = int(header_blob.split(b" ", 2)[1])
        resp_headers = {}
        for line in header_blob.decode().splitlines()[1:]:
            name, _, value = line.partition(":")
            resp_headers[name.strip().lower()] = value.strip()
        try:
            return status, json.loads(body_blob), resp_headers
        except ValueError:
            return status, body_blob.decode(), resp_headers

    return asyncio.run(go())


class TestMetricsEndpoint:
    def test_valid_prometheus_exposition(self, server):
        server.request("GET", "/healthz")
        job = server.request("POST", "/jobs", SPEC)[1]
        server.wait_done(job["id"])
        status, text, headers = server.request_with_headers("GET", "/metrics")
        assert status == 200
        assert headers["content-type"] == METRICS_CONTENT_TYPE
        problems, types, samples = check_prometheus(text)
        assert problems == []
        assert samples > 20
        # the catalogue spans every instrumented layer
        for family in ("repro_http_requests_total",
                       "repro_http_request_seconds",
                       "repro_jobs_submitted_total",
                       "repro_jobs_completed_total",
                       "repro_job_queue_wait_seconds",
                       "repro_job_run_seconds",
                       "repro_job_queue_depth",
                       "repro_store_misses_total",
                       "repro_store_puts_total",
                       "repro_sweep_cells_total",
                       "repro_sweep_cell_seconds"):
            assert family in types, f"{family} missing from /metrics"

    def test_requires_get(self, server):
        assert server.request("POST", "/metrics")[0] == 405

    def test_request_counter_moves(self, server):
        def scrape():
            text = server.request("GET", "/metrics")[1]
            for line in text.splitlines():
                if line.startswith('repro_http_requests_total{endpoint="/healthz"'):
                    return float(line.rsplit(" ", 1)[1])
            return 0.0

        server.request("GET", "/healthz")
        before = scrape()
        server.request("GET", "/healthz")
        server.request("GET", "/healthz")
        assert scrape() == before + 2


class TestRequestId:
    def test_generated_and_echoed(self, server):
        _, _, headers = server.request_with_headers("GET", "/healthz")
        assert headers.get("x-request-id")

    def test_client_id_wins(self, server):
        status, _, headers = raw_request(
            server.port, "GET", "/stats",
            headers={"X-Request-Id": "load-test-42"})
        assert status == 200
        assert headers["x-request-id"] == "load-test-42"

    def test_error_responses_carry_id_too(self, server):
        _, _, headers = server.request_with_headers("GET", "/no-such")
        assert headers.get("x-request-id")

    def test_threaded_into_job_journal_and_manifest(self, server):
        rid = "trace-me-7"
        status, job, headers = raw_request(
            server.port, "POST", "/jobs", SPEC,
            headers={"X-Request-Id": rid})
        assert status == 202
        assert headers["x-request-id"] == rid
        assert job["request_id"] == rid
        done = server.wait_done(job["id"])
        assert done["request_id"] == rid

        job_dir = server.manager.job_dir(job["id"])
        rows = list(iter_journal_lines(job_dir / "run" / "journal.jsonl"))
        assert rows and all(r["request_id"] == rid for r in rows)

        manifest = json.loads(
            (job_dir / "job-manifest.json").read_text(encoding="utf-8"))
        assert manifest["request_id"] == rid
        # ...but the correlation id is volatile: the reproducibility core
        # two identical runs must agree on never sees it
        assert "request_id" not in manifest_core(manifest)


class TestSpanTree:
    def test_one_job_yields_connected_wall_clock_tree(self, server, tmp_path):
        rid = "span-tree-1"
        _, job, _ = raw_request(server.port, "POST", "/jobs", SPEC,
                                headers={"X-Request-Id": rid})
        server.wait_done(job["id"])
        time.sleep(0.2)  # the HTTP respond span lands after the 202

        run_dir = server.manager.run_dir(job["id"])
        spans = load_spans(run_dir)
        assert span_tree_problems(spans) == []
        assert {s["trace_id"] for s in spans} == {rid}
        roots = [s for s in spans if not s.get("parent_id")]
        assert [r["span_id"] for r in roots] == [request_root_span_id(rid)]
        names = {s["name"] for s in spans}
        for expected in ("POST /jobs", "receive", "validate+enqueue",
                         "respond", "queue-wait", "sweep run",
                         "write-result", "store-put"):
            assert expected in names, f"missing span {expected!r}"
        assert "cell simulate" in names or "cell cache-hit" in names
        procs = {s["proc"] for s in spans}
        assert "http" in procs and "job-manager" in procs

        doc = spans_to_chrome(spans)
        assert validate_chrome_trace(doc) == []
        assert doc["metadata"]["clock_domain"] == "wall-clock"

    def test_serve_export_cli(self, server, tmp_path):
        from repro.cli import main as cli_main

        _, job = server.request("POST", "/jobs", SPEC)
        server.wait_done(job["id"])
        time.sleep(0.2)
        out = tmp_path / "spans.json"
        rc = cli_main(["trace", "serve-export",
                       str(server.manager.run_dir(job["id"])),
                       "--out", str(out)])
        assert rc == 0
        assert validate_chrome_trace(str(out)) == []

    def test_serve_export_refuses_empty(self, tmp_path):
        from repro.cli import main as cli_main

        rc = cli_main(["trace", "serve-export", str(tmp_path)])
        assert rc == 1


class TestRestartPersistence:
    """The /stats amnesia fix: lifecycle counters survive a restart."""

    def _run_job(self, mgr):
        job = mgr.submit(SPEC)
        deadline = time.time() + 60
        while mgr.get(job.id).state not in ("done", "failed"):
            assert time.time() < deadline, "job did not finish"
            time.sleep(0.02)
        assert mgr.get(job.id).state == "done"
        return job

    def test_stats_survive_close_and_reopen(self, tmp_path):
        data_dir = tmp_path / "svc"
        mgr = JobManager(data_dir=data_dir, job_workers=1)
        mgr.start()
        try:
            self._run_job(mgr)
            mgr.note_rejected("queue_full")
            before = mgr.stats()
        finally:
            mgr.close()
        assert before["admission"]["rejected"] == 1
        assert before["store"]["puts"] == 1

        mgr2 = JobManager(data_dir=data_dir, job_workers=1)
        try:
            after = mgr2.stats()
            assert after["admission"]["rejected"] == 1
            assert after["store"]["puts"] == 1
            assert after["store"]["misses"] == before["store"]["misses"]
            assert mgr2.metrics.counter_total(
                "repro_jobs_submitted_total") == 1
            assert mgr2.metrics.counter_total(
                "repro_jobs_completed_total") == 1
        finally:
            mgr2.close()

    def test_counters_survive_abandonment(self, tmp_path):
        """No clean close() — the SIGKILL shape of the chaos load test.

        Every terminal job transition snapshots the registry, so a
        manager that never got to shut down still leaves its completed
        work on disk for the next incarnation.
        """
        data_dir = tmp_path / "svc"
        mgr = JobManager(data_dir=data_dir, job_workers=1)
        mgr.start()
        try:
            self._run_job(mgr)
            reloaded = WallClockRegistry()
            assert reloaded.load(mgr.metrics_path)
            assert reloaded.counter_total("repro_jobs_submitted_total") == 1
            assert reloaded.counter_total("repro_jobs_completed_total") == 1
        finally:
            mgr.close()


class TestBitIdentity:
    def test_results_identical_with_telemetry_on_and_off(self, tmp_path):
        configs = resolve_sweep_configs(["vb", "base"])
        kwargs = dict(refs=3_000, seed=3, scale=0.02)

        plain = run_parallel_sweep(configs, ["lu"], **kwargs)
        clear_trace_cache()

        metrics = WallClockRegistry()
        with SpanRecorder("rid", sink_path=tmp_path / "spans.jsonl") as spans:
            traced = run_parallel_sweep(
                configs, ["lu"], metrics=metrics, spans=spans,
                request_id="rid", **kwargs)

        assert list(plain) == list(traced)
        for key in plain:
            assert counters_digest(plain[key].counters) == \
                counters_digest(traced[key].counters)
            assert plain[key].metrics == traced[key].metrics
        # and the telemetry did actually record the work
        assert metrics.counter_total("repro_sweep_cells_total") == 2
        count, _ = metrics.histogram_totals("repro_sweep_cell_seconds")
        assert count == 2
