"""Tests for the content-addressed result store: digest round-trip,
quarantine-and-resimulate, concurrent writers, engine transparency."""

from __future__ import annotations

import errno
import json
import os
import threading
import time

import pytest

from repro.service.store import ResultStore, result_key, service_data_dir
from repro.sim.runner import clear_trace_cache, simulate, sweep
from repro.system.builder import system_config

REFS = 2_000
SCALE = 0.02
SEED = 5


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
    clear_trace_cache()
    yield
    clear_trace_cache()


@pytest.fixture()
def store(tmp_path):
    return ResultStore(tmp_path / "store")


def _simulate(system="vb", benchmark="fft", **kw):
    return simulate(system, benchmark, refs=REFS, seed=SEED, scale=SCALE, **kw)


class TestResultKey:
    def test_deterministic(self):
        cfg = system_config("vb")
        k1 = result_key(cfg, "fft", REFS, SEED, SCALE)
        k2 = result_key(cfg, "fft", REFS, SEED, SCALE)
        assert k1 == k2

    def test_covers_every_identity_field(self):
        cfg = system_config("vb")
        base = result_key(cfg, "fft", REFS, SEED, SCALE)
        assert result_key(system_config("base"), "fft", REFS, SEED, SCALE) != base
        assert result_key(cfg, "lu", REFS, SEED, SCALE) != base
        assert result_key(cfg, "fft", REFS + 1, SEED, SCALE) != base
        assert result_key(cfg, "fft", REFS, SEED + 1, SCALE) != base
        assert result_key(cfg, "fft", REFS, SEED, SCALE * 2) != base

    def test_config_override_changes_key(self):
        plain = result_key(system_config("vb"), "fft", REFS, SEED, SCALE)
        tuned = result_key(
            system_config("vb", cache_assoc=4), "fft", REFS, SEED, SCALE
        )
        assert plain != tuned


class TestRoundTrip:
    def test_hit_is_bit_identical(self, store):
        fresh = _simulate()
        store.put(fresh, SCALE, refs=REFS, seed=SEED)
        hit = store.get(
            fresh.config, "fft", refs=REFS, seed=SEED, scale=SCALE, system="vb"
        )
        assert hit is not None
        assert hit.counters == fresh.counters
        assert hit.refs == fresh.refs
        assert hit.seed == fresh.seed
        assert hit.metrics == fresh.metrics
        assert hit.elapsed_s == 0.0  # a hit costs no engine time
        assert store.stats()["hits"] == 1

    def test_requested_vs_actual_refs(self, store):
        # the generator rounds refs up; the key must use the REQUEST
        fresh = _simulate()
        assert fresh.refs != REFS  # the premise of the whole test
        store.put(fresh, SCALE, refs=REFS, seed=SEED)
        hit = store.get(fresh.config, "fft", refs=REFS, seed=SEED, scale=SCALE)
        assert hit is not None and hit.refs == fresh.refs

    def test_miss_on_absent_entry(self, store):
        cfg = system_config("vb")
        assert store.get(cfg, "fft", refs=REFS, seed=SEED, scale=SCALE) is None
        assert store.stats()["misses"] == 1

    def test_engine_transparent(self, store):
        # a cell simulated on the interpreter must serve a batch request:
        # the key carries no engine at all
        fresh = _simulate(engine="interp")
        store.put(fresh, SCALE, refs=REFS, seed=SEED)
        batch = _simulate(engine="batch")
        assert batch.counters == fresh.counters  # engines bit-identical
        hit = store.get(batch.config, "fft", refs=REFS, seed=SEED, scale=SCALE)
        assert hit is not None and hit.counters == batch.counters


class TestQuarantine:
    def _entry_path(self, store, fresh):
        return store.path_for(result_key(fresh.config, "fft", REFS, SEED, SCALE))

    def test_torn_entry_quarantined(self, store):
        fresh = _simulate()
        store.put(fresh, SCALE, refs=REFS, seed=SEED)
        path = self._entry_path(store, fresh)
        path.write_text(path.read_text()[: 40], encoding="utf-8")  # truncate
        assert store.get(fresh.config, "fft", refs=REFS, seed=SEED,
                         scale=SCALE) is None
        assert not path.exists()
        assert path.with_name(path.name + ".corrupt").exists()
        assert store.stats()["quarantined"] == 1

    def test_tampered_counters_quarantined(self, store):
        fresh = _simulate()
        store.put(fresh, SCALE, refs=REFS, seed=SEED)
        path = self._entry_path(store, fresh)
        body = json.loads(path.read_text(encoding="utf-8"))
        body["counters"]["reads"] += 1  # flip one counter
        path.write_text(json.dumps(body), encoding="utf-8")
        assert store.get(fresh.config, "fft", refs=REFS, seed=SEED,
                         scale=SCALE) is None
        assert path.with_name(path.name + ".corrupt").exists()

    def test_version_skew_quarantined(self, store):
        fresh = _simulate()
        store.put(fresh, SCALE, refs=REFS, seed=SEED)
        path = self._entry_path(store, fresh)
        body = json.loads(path.read_text(encoding="utf-8"))
        body["store_version"] = 999
        path.write_text(json.dumps(body), encoding="utf-8")
        assert store.get(fresh.config, "fft", refs=REFS, seed=SEED,
                         scale=SCALE) is None

    def test_resimulation_after_quarantine_is_identical(self, store, tmp_path):
        # a sweep whose store entry rots re-simulates transparently and
        # produces the same counters it would have served
        results = sweep(["vb"], ["fft"], refs=REFS, seed=SEED, scale=SCALE,
                        result_store=store)
        entry = next(store.root.glob("*/*.json"))
        entry.write_text("{not json", encoding="utf-8")
        again = sweep(["vb"], ["fft"], refs=REFS, seed=SEED, scale=SCALE,
                      result_store=store)
        assert again[("vb", "fft")].counters == results[("vb", "fft")].counters
        assert store.stats()["quarantined"] == 1
        # the re-simulation re-populated the store
        assert store.entry_count() == 1


class TestConcurrency:
    def test_concurrent_writers_single_entry(self, store):
        # many threads racing the same key: atomic rename means readers
        # never see a torn entry and exactly one file remains
        fresh = _simulate()
        errors = []

        def writer():
            try:
                for _ in range(20):
                    assert store.put(fresh, SCALE, refs=REFS, seed=SEED)
                    got = store.get(fresh.config, "fft", refs=REFS,
                                    seed=SEED, scale=SCALE)
                    assert got is not None
                    assert got.counters == fresh.counters
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert store.entry_count() == 1
        assert store.stats()["quarantined"] == 0


class TestHousekeeping:
    def test_clear(self, store):
        store.put(_simulate(), SCALE, refs=REFS, seed=SEED)
        assert store.entry_count() == 1
        assert store.clear() == 1
        assert store.entry_count() == 0

    def test_service_dir_env(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_SERVICE_DIR", str(tmp_path / "svc"))
        assert service_data_dir() == tmp_path / "svc"

    def test_put_failure_returns_none(self, store, monkeypatch):
        import repro.service.store as store_mod

        def boom(*a, **k):
            raise OSError("disk full")

        monkeypatch.setattr(store_mod.tempfile, "mkstemp", boom)
        assert store.put(_simulate(), SCALE, refs=REFS, seed=SEED) is None


class TestEviction:
    def _fill(self, store, seeds):
        for seed in seeds:
            r = simulate("vb", "fft", refs=REFS, seed=seed, scale=SCALE)
            assert store.put(r, SCALE, refs=REFS, seed=seed) is not None
            time.sleep(0.01)  # distinct mtimes for a deterministic LRU order

    def test_unbounded_by_default(self, store):
        self._fill(store, [1, 2, 3])
        assert store.max_bytes is None
        assert store.entry_count() == 3
        assert store.stats()["evicted"] == 0

    def test_evicts_down_to_budget(self, tmp_path):
        probe = ResultStore(tmp_path / "probe")
        self._fill(probe, [1])
        entry_size = probe.size_bytes()
        store = ResultStore(tmp_path / "store",
                            max_bytes=int(entry_size * 2.5))
        self._fill(store, [1, 2, 3, 4])
        assert store.size_bytes() <= store.max_bytes
        assert store.entry_count() == 2
        assert store.stats()["evicted"] == 2

    def test_eviction_is_lru_and_spares_fresh_write(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        self._fill(store, [1, 2])
        # touch seed=1 so seed=2 becomes the least recently used
        cfg = system_config("vb")
        assert store.get(cfg, "fft", refs=REFS, seed=1, scale=SCALE) is not None
        time.sleep(0.01)
        store.max_bytes = int(store.size_bytes() * 1.2)  # room for ~1 entry
        self._fill(store, [3])
        assert store.get(cfg, "fft", refs=REFS, seed=3, scale=SCALE) is not None
        hit1 = store.get(cfg, "fft", refs=REFS, seed=1, scale=SCALE)
        hit2 = store.get(cfg, "fft", refs=REFS, seed=2, scale=SCALE)
        assert hit2 is None  # the LRU entry went first
        assert hit1 is not None or store.entry_count() == 1

    def test_env_budget(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "12345")
        assert ResultStore(tmp_path / "s").max_bytes == 12345
        monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "0")
        assert ResultStore(tmp_path / "s").max_bytes is None
        monkeypatch.setenv("REPRO_STORE_MAX_BYTES", "junk")
        assert ResultStore(tmp_path / "s").max_bytes is None


class TestDegradation:
    """Full-disk / read-only roots degrade to re-simulation, never crash."""

    def _broken_writes(self, monkeypatch, errno_code):
        import repro.service.store as store_mod

        state = {"broken": True}
        real = store_mod.tempfile.mkstemp

        def flaky(*a, **k):
            if state["broken"]:
                raise OSError(errno_code, os.strerror(errno_code))
            return real(*a, **k)

        monkeypatch.setattr(store_mod.tempfile, "mkstemp", flaky)
        return state

    def test_enospc_enters_degraded_then_recovers(self, store, monkeypatch):
        state = self._broken_writes(monkeypatch, errno.ENOSPC)
        fresh = _simulate()
        assert store.put(fresh, SCALE, refs=REFS, seed=SEED) is None
        assert store.degraded
        assert store.stats()["degraded"] is True
        assert store.stats()["put_failures"] == 1
        state["broken"] = False  # the disk got space back
        assert store.put(fresh, SCALE, refs=REFS, seed=SEED) is not None
        assert not store.degraded
        assert store.stats()["degraded"] is False

    def test_read_only_root_get_put_never_crash(self, tmp_path, monkeypatch):
        # the container runs as root, so a chmodded directory would not
        # actually refuse writes; EROFS via monkeypatch is the honest way
        store = ResultStore(tmp_path / "ro-store")
        state = self._broken_writes(monkeypatch, errno.EROFS)
        assert state["broken"]
        fresh = _simulate()
        assert store.put(fresh, SCALE, refs=REFS, seed=SEED) is None
        assert store.get(fresh.config, "fft", refs=REFS, seed=SEED,
                         scale=SCALE) is None  # miss, not a crash
        assert store.stats()["misses"] == 1

    def test_sweep_degrades_to_uncached(self, tmp_path, monkeypatch):
        # a sweep over a store that cannot write still completes, and the
        # skip is visible in the recovery log
        from repro.sim.parallel import RecoveryLog

        store = ResultStore(tmp_path / "store")
        self._broken_writes(monkeypatch, errno.ENOSPC)
        recovery = RecoveryLog()
        results = sweep(["vb"], ["fft"], refs=REFS, seed=SEED, scale=SCALE,
                        result_store=store, recovery=recovery)
        assert results[("vb", "fft")].counters.reads > 0
        assert recovery.counts.get("result_store_skipped") == 1
        assert recovery.counts.get("store_degraded") == 1
        assert store.entry_count() == 0

    def test_prefilled_quarantine_name_falls_back_to_unlink(self, store):
        # a DIRECTORY squatting on the .corrupt name makes os.replace
        # fail; quarantine falls back to deleting the bad entry
        fresh = _simulate()
        store.put(fresh, SCALE, refs=REFS, seed=SEED)
        path = store.path_for(
            result_key(fresh.config, "fft", REFS, SEED, SCALE))
        path.write_text("{rotten", encoding="utf-8")
        (path.parent / (path.name + ".corrupt")).mkdir()
        assert store.get(fresh.config, "fft", refs=REFS, seed=SEED,
                         scale=SCALE) is None
        assert not path.exists()  # deleted despite the blocked rename
        assert store.stats()["quarantined"] == 1
        # and the cell can be re-stored afterwards
        assert store.put(fresh, SCALE, refs=REFS, seed=SEED) is not None

    def test_unremovable_corrupt_entry_counts_skip(self, store, monkeypatch):
        # replace AND unlink both fail: the entry stays, every read is a
        # miss, and the failure is tallied — but nothing raises
        fresh = _simulate()
        store.put(fresh, SCALE, refs=REFS, seed=SEED)
        path = store.path_for(
            result_key(fresh.config, "fft", REFS, SEED, SCALE))
        path.write_text("{rotten", encoding="utf-8")
        import repro.service.store as store_mod

        def refuse(*a, **k):
            raise OSError(errno.EROFS, "read-only file system")

        monkeypatch.setattr(store_mod.os, "replace", refuse)
        monkeypatch.setattr(store_mod.Path, "unlink", refuse)
        for _ in range(2):
            assert store.get(fresh.config, "fft", refs=REFS, seed=SEED,
                             scale=SCALE) is None
        assert store.stats()["quarantine_failed"] == 2
        assert store.stats()["quarantined"] == 0


class TestSweepIntegration:
    def test_second_sweep_all_hits(self, store, tmp_path):
        first = sweep(["vb", "base"], ["fft", "lu"], refs=REFS, seed=SEED,
                      scale=SCALE, result_store=store)
        assert store.stats()["puts"] == 4
        from repro.sim.parallel import RecoveryLog

        recovery = RecoveryLog()
        second = sweep(["vb", "base"], ["fft", "lu"], refs=REFS, seed=SEED,
                       scale=SCALE, result_store=store, recovery=recovery)
        assert recovery.counts.get("cell_cache_hit") == 4
        for key, r in first.items():
            assert second[key].counters == r.counters
            assert second[key].metrics == r.metrics

    def test_journal_marks_cached_cells(self, store, tmp_path):
        sweep(["vb"], ["fft"], refs=REFS, seed=SEED, scale=SCALE,
              result_store=store)
        run_dir = tmp_path / "run"
        sweep(["vb"], ["fft"], refs=REFS, seed=SEED, scale=SCALE,
              result_store=store, run_dir=str(run_dir))
        from repro.obs.monitor import SweepProgress

        progress = SweepProgress(run_dir)
        assert progress.done_cells == 1
        assert progress.cached_cells == 1
        assert "+" in "\n".join(progress.grid())
        snap = progress.snapshot()
        assert snap["cached_cells"] == 1 and snap["simulated_cells"] == 0

    def test_manifest_core_unchanged_by_cache(self, store, monkeypatch,
                                              tmp_path):
        # all-miss and all-hit runs must agree on the core manifest
        from repro.obs.manifest import manifest_core
        from repro.sim.parallel import timed_sweep
        from repro.sim.runner import resolve_sweep_configs

        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path / "m1"))
        configs = resolve_sweep_configs(["vb"])
        timed_sweep(configs, ["fft"], refs=REFS, seed=SEED, scale=SCALE,
                    result_store=store)
        monkeypatch.setenv("REPRO_MANIFEST_DIR", str(tmp_path / "m2"))
        timed_sweep(configs, ["fft"], refs=REFS, seed=SEED, scale=SCALE,
                    result_store=store)
        m1 = json.loads((tmp_path / "m1" / "sweep-manifest.json").read_text())
        m2 = json.loads((tmp_path / "m2" / "sweep-manifest.json").read_text())
        assert m1["cache"]["hits"] == 0 and m2["cache"]["hits"] == 1
        assert json.dumps(manifest_core(m1), sort_keys=True) == \
            json.dumps(manifest_core(m2), sort_keys=True)
