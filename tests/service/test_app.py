"""Tests for the HTTP layer: every endpoint, every error path, over a
real asyncio server on an ephemeral port."""

from __future__ import annotations

import asyncio
import json
import threading
import time

import pytest

from repro.service.app import MAX_BODY_BYTES, ServiceApp, serve
from repro.service.jobs import JobManager
from repro.sim.runner import clear_trace_cache

REFS = 2_000
SPEC = {"systems": ["vb"], "benchmarks": ["fft"], "refs": REFS, "seed": 5,
        "scale": 0.02}


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
    clear_trace_cache()
    yield
    clear_trace_cache()


class LiveServer:
    """`repro serve` on an ephemeral port, on a background thread."""

    def __init__(self, data_dir, **manager_kwargs) -> None:
        manager_kwargs.setdefault("job_workers", 2)
        self.manager = JobManager(data_dir=data_dir, **manager_kwargs)
        self.port = None
        self._loop = None
        self._thread = None

    def __enter__(self) -> "LiveServer":
        started = threading.Event()
        lines = []

        class _Out:
            def write(self, text):
                lines.append(text)

            def flush(self):
                pass

        def runner():
            self._loop = asyncio.new_event_loop()
            asyncio.set_event_loop(self._loop)
            ready = asyncio.Event()

            async def main():
                task = asyncio.ensure_future(serve(
                    self.manager, host="127.0.0.1", port=0,
                    ready_event=ready, out=_Out(),
                ))
                await ready.wait()
                for line in lines:
                    if line.startswith("listening on http://"):
                        self.port = int(line.strip().rsplit(":", 1)[1])
                started.set()
                try:
                    await task
                except asyncio.CancelledError:
                    pass

            try:
                self._loop.run_until_complete(main())
            finally:
                self._loop.close()

        self._thread = threading.Thread(target=runner, daemon=True)
        self._thread.start()
        assert started.wait(timeout=30), "server did not start"
        assert self.port, "no listening line printed"
        return self

    def __exit__(self, *exc) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(
                lambda: [t.cancel() for t in asyncio.all_tasks(self._loop)])
        self._thread.join(timeout=10)

    # -- client (sync wrapper around one-shot asyncio connections) --------

    def request(self, method, path, body=None, raw_body=None):
        status, payload, _headers = asyncio.run(
            self._request(method, path, body, raw_body))
        return status, payload

    def request_with_headers(self, method, path, body=None, raw_body=None):
        return asyncio.run(self._request(method, path, body, raw_body))

    async def _request(self, method, path, body, raw_body):
        payload = raw_body if raw_body is not None else (
            json.dumps(body).encode() if body is not None else b"")
        head = (
            f"{method} {path} HTTP/1.1\r\nHost: t\r\n"
            f"Content-Length: {len(payload)}\r\nConnection: close\r\n\r\n"
        ).encode()
        reader, writer = await asyncio.open_connection("127.0.0.1", self.port)
        try:
            writer.write(head + payload)
            await writer.drain()
            raw = await asyncio.wait_for(reader.read(), 30)
        finally:
            writer.close()
        header_blob, _, body_blob = raw.partition(b"\r\n\r\n")
        status = int(header_blob.split(b" ", 2)[1])
        ctype = ""
        headers = {}
        for line in header_blob.decode().splitlines()[1:]:
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        ctype = headers.get("content-type", "")
        if ctype.startswith("application/json"):
            return status, json.loads(body_blob), headers
        return status, body_blob.decode(), headers

    def wait_done(self, job_id, timeout=60.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            status, j = self.request("GET", f"/jobs/{job_id}")
            if status == 200 and j["state"] in ("done", "failed"):
                return j
            time.sleep(0.05)
        raise AssertionError(f"job {job_id} did not finish")


@pytest.fixture()
def server(tmp_path):
    with LiveServer(tmp_path / "svc") as s:
        yield s


class TestEndpoints:
    def test_healthz(self, server):
        assert server.request("GET", "/healthz") == (
            200, {"ok": True, "status": "ok"}
        )

    def test_submit_poll_result(self, server):
        status, job = server.request("POST", "/jobs", SPEC)
        assert status == 202
        finished = server.wait_done(job["id"])
        assert finished["state"] == "done"
        assert finished["progress"]["complete"] is True
        assert finished["progress"]["total_cells"] == 1
        status, result = server.request("GET", f"/jobs/{job['id']}/result")
        assert status == 200
        assert result["cells"][0]["counters_sha"]

    def test_resubmit_hits_cache_bit_identically(self, server):
        _, a = server.request("POST", "/jobs", SPEC)
        done_a = server.wait_done(a["id"])
        _, b = server.request("POST", "/jobs", SPEC)
        done_b = server.wait_done(b["id"])
        assert done_a["cache"]["hits"] == 0
        assert done_b["cache"]["hit_rate"] == 1.0
        _, ra = server.request("GET", f"/jobs/{a['id']}/result")
        _, rb = server.request("GET", f"/jobs/{b['id']}/result")
        assert ra["cells"][0]["counters"] == rb["cells"][0]["counters"]
        assert ra["cells"][0]["counters_sha"] == rb["cells"][0]["counters_sha"]
        # the cached cell renders as '+' on the board
        _, board = server.request("GET", f"/jobs/{b['id']}/top")
        assert "+" in board and "result store" in board

    def test_jobs_listing(self, server):
        _, job = server.request("POST", "/jobs", SPEC)
        server.wait_done(job["id"])
        status, listing = server.request("GET", "/jobs?limit=10")
        assert status == 200
        assert [j["id"] for j in listing["jobs"]] == [job["id"]]

    def test_top_text_and_json(self, server):
        _, job = server.request("POST", "/jobs", SPEC)
        server.wait_done(job["id"])
        status, text = server.request("GET", "/top")
        assert status == 200 and isinstance(text, str)
        assert "jobs     1 known" in text
        status, agg = server.request("GET", "/top?format=json")
        assert agg["totals"]["done_cells"] == 1
        status, snap = server.request(
            "GET", f"/jobs/{job['id']}/top?format=json")
        assert snap["done_cells"] == 1

    def test_stats(self, server):
        _, job = server.request("POST", "/jobs", SPEC)
        server.wait_done(job["id"])
        status, stats = server.request("GET", "/stats")
        assert status == 200
        assert stats["jobs"]["by_state"]["done"] == 1
        assert stats["store"]["puts"] == 1


class TestErrorPaths:
    def test_unknown_path_404(self, server):
        status, body = server.request("GET", "/bogus")
        assert status == 404 and "error" in body

    def test_unknown_job_404(self, server):
        assert server.request("GET", "/jobs/nope")[0] == 404
        assert server.request("GET", "/jobs/nope/result")[0] == 404

    def test_result_before_done_404(self, server):
        _, job = server.request("POST", "/jobs", SPEC)
        # immediately, before completion (state queued/running) — or the
        # job finished already, in which case skip the premise
        status, body = server.request("GET", f"/jobs/{job['id']}/result")
        if status != 200:
            assert status == 404 and "no result" in body["error"]
        server.wait_done(job["id"])

    def test_bad_spec_400_names_field(self, server):
        status, body = server.request(
            "POST", "/jobs", dict(SPEC, refs="many"))
        assert status == 400 and "refs" in body["error"]

    def test_unknown_system_400(self, server):
        status, body = server.request(
            "POST", "/jobs", dict(SPEC, systems=["warp9"]))
        assert status == 400 and "warp9" in body["error"]

    def test_non_json_body_400(self, server):
        status, body = server.request("POST", "/jobs", raw_body=b"not json")
        assert status == 400 and "JSON" in body["error"]

    def test_wrong_method_405(self, server):
        assert server.request("POST", "/healthz")[0] == 405
        assert server.request("DELETE", "/jobs")[0] == 405

    def test_oversized_body_413(self, server):
        blob = b"x" * (MAX_BODY_BYTES + 1)
        status, _ = server.request("POST", "/jobs", raw_body=blob)
        assert status == 413

    def test_bad_query_param_400(self, server):
        assert server.request("GET", "/jobs?limit=soon")[0] == 400


class _StalledExecutor:
    """Swallows submissions so jobs stay deterministically queued."""

    def submit(self, fn, *args):  # noqa: ARG002 - signature match
        return None

    def shutdown(self, wait=True, cancel_futures=False):  # noqa: ARG002
        return None


def _stall(server: LiveServer) -> None:
    server.manager._executor.shutdown(wait=True)
    server.manager._executor = _StalledExecutor()


class TestListLimit:
    def test_limit_zero_returns_empty_list(self, server):
        _, job = server.request("POST", "/jobs", SPEC)
        server.wait_done(job["id"])
        status, listing = server.request("GET", "/jobs?limit=0")
        assert status == 200
        assert listing["jobs"] == []

    def test_negative_limit_400(self, server):
        status, body = server.request("GET", "/jobs?limit=-1")
        assert status == 400 and "limit" in body["error"]


class TestCancelEndpoint:
    def test_cancel_queued_job(self, server):
        _stall(server)
        _, job = server.request("POST", "/jobs", SPEC)
        status, cancelled = server.request(
            "POST", f"/jobs/{job['id']}/cancel")
        assert status == 200 and cancelled["state"] == "cancelled"
        status, again = server.request("GET", f"/jobs/{job['id']}")
        assert status == 200 and again["state"] == "cancelled"

    def test_cancel_is_idempotent(self, server):
        _stall(server)
        _, job = server.request("POST", "/jobs", SPEC)
        server.request("POST", f"/jobs/{job['id']}/cancel")
        status, body = server.request("POST", f"/jobs/{job['id']}/cancel")
        assert status == 200 and body["state"] == "cancelled"

    def test_cancel_done_job_left_done(self, server):
        _, job = server.request("POST", "/jobs", SPEC)
        server.wait_done(job["id"])
        status, body = server.request("POST", f"/jobs/{job['id']}/cancel")
        assert status == 200 and body["state"] == "done"

    def test_cancel_unknown_404(self, server):
        assert server.request("POST", "/jobs/nope/cancel")[0] == 404

    def test_cancel_wrong_method_405(self, server):
        _stall(server)
        _, job = server.request("POST", "/jobs", SPEC)
        assert server.request("GET", f"/jobs/{job['id']}/cancel")[0] == 405


class TestOverload:
    def test_queue_full_503_with_retry_after(self, tmp_path):
        with LiveServer(tmp_path / "svc", max_queued_jobs=1,
                        max_inflight_cells=0) as server:
            _stall(server)
            status, _ = server.request("POST", "/jobs", SPEC)
            assert status == 202
            status, body, headers = server.request_with_headers(
                "POST", "/jobs", SPEC)
            assert status == 503
            assert "queue full" in body["error"]
            assert int(headers["retry-after"]) >= 1
            # shedding is visible in /stats, and reads still work
            status, stats = server.request("GET", "/stats")
            assert status == 200
            assert stats["admission"]["rejected"] == 1

    def test_cell_budget_503(self, tmp_path):
        wide = dict(SPEC, systems=["vb", "vp"])  # 2 cells > budget 1
        with LiveServer(tmp_path / "svc",
                        max_inflight_cells=1) as server:
            status, body = server.request("POST", "/jobs", wide)
            assert status == 503
            assert "cell budget" in body["error"]


class TestDraining:
    def test_draining_health_and_503(self, server):
        server.manager.begin_drain()
        status, health = server.request("GET", "/healthz")
        assert status == 200
        assert health == {"ok": False, "status": "draining"}
        status, body, headers = server.request_with_headers(
            "POST", "/jobs", SPEC)
        assert status == 503
        assert "draining" in body["error"]
        assert "retry-after" in headers
        # read-only endpoints stay live during drain
        assert server.request("GET", "/jobs")[0] == 200
        assert server.request("GET", "/stats")[0] == 200


class TestServiceFaultInjection:
    def test_injected_reject_503(self, server, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=1; reject=1.0")
        status, body = server.request("POST", "/jobs", SPEC)
        assert status == 503 and "injected" in body["error"]
        # reads are never shed by the reject fault
        assert server.request("GET", "/healthz")[0] == 200
        monkeypatch.delenv("REPRO_FAULTS")
        status, _ = server.request("POST", "/jobs", SPEC)
        assert status == 202

    def test_injected_hang_delays_response(self, server, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=1; hang=1.0:0.3")
        t0 = time.monotonic()
        status, _ = server.request("GET", "/healthz")
        elapsed = time.monotonic() - t0
        assert status == 200
        assert elapsed >= 0.25


class TestRouteUnit:
    """_route() details not worth a socket."""

    def _app(self, tmp_path):
        mgr = JobManager(data_dir=tmp_path / "svc")
        return ServiceApp(mgr)

    def test_trailing_slash_normalised(self, tmp_path):
        app = self._app(tmp_path)
        status, payload, _ = app._route("GET", "/healthz/", None)
        assert status == 200 and payload == {"ok": True, "status": "ok"}

    def test_internal_error_becomes_500(self, tmp_path):
        app = self._app(tmp_path)

        async def run():
            class Boom:
                def stats(self):
                    raise RuntimeError("kaput")

            app.manager = Boom()
            reader = asyncio.StreamReader()
            reader.feed_data(b"GET /stats HTTP/1.1\r\n\r\n")
            reader.feed_eof()

            sent = []

            class FakeWriter:
                def write(self, data):
                    sent.append(data)

                async def drain(self):
                    pass

                def close(self):
                    pass

                async def wait_closed(self):
                    pass

            await app.handle(reader, FakeWriter())
            return b"".join(sent)

        raw = asyncio.run(run())
        assert raw.startswith(b"HTTP/1.1 500")
        assert b"kaput" in raw
