"""Tests for the job manager: spec validation, lifecycle, persistence,
restart recovery, and the shared result store."""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import JobSpecError
from repro.service.jobs import Job, JobManager, JobSpec
from repro.sim.runner import clear_trace_cache

REFS = 2_000
SPEC = {"systems": ["vb"], "benchmarks": ["fft"], "refs": REFS, "seed": 5,
        "scale": 0.02}


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
    clear_trace_cache()
    yield
    clear_trace_cache()


@pytest.fixture()
def manager(tmp_path):
    mgr = JobManager(data_dir=tmp_path / "svc", job_workers=2)
    mgr.start()
    yield mgr
    mgr.close()


def _wait(mgr, job_id, timeout=60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        job = mgr.get(job_id)
        if job.state in ("done", "failed"):
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish")


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec.from_dict(SPEC)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_comma_separated_names(self):
        spec = JobSpec.from_dict(
            dict(SPEC, systems="vb, base", benchmarks="fft,lu"))
        assert spec.systems == ("vb", "base")
        assert spec.benchmarks == ("fft", "lu")

    @pytest.mark.parametrize("broken, needle", [
        ("not a dict", "JSON object"),
        ({}, "systems"),
        (dict(SPEC, systems=[]), "systems"),
        (dict(SPEC, benchmarks=["nope"]), "unknown benchmark"),
        (dict(SPEC, systems=["nosuch"]), "nosuch"),
        (dict(SPEC, refs="many"), "refs"),
        (dict(SPEC, refs=0), "refs"),
        (dict(SPEC, seed=-1), "seed"),
        (dict(SPEC, scale=0), "scale"),
        (dict(SPEC, engine="turbo"), "engine"),
        (dict(SPEC, jobs=0), "jobs"),
        (dict(SPEC, surprise=1), "unknown spec field"),
        (dict(SPEC, systems=["vb"] * 60, benchmarks=["fft"] * 10), "limit"),
    ])
    def test_rejects_bad_specs(self, broken, needle):
        with pytest.raises(JobSpecError, match=needle):
            JobSpec.from_dict(broken)


class TestLifecycle:
    def test_submit_runs_to_done(self, manager):
        job = manager.submit(SPEC)
        assert job.state in ("queued", "running", "done")  # live object
        finished = _wait(manager, job.id)
        assert finished.state == "done"
        assert finished.error is None
        assert finished.cache["total_cells"] == 1
        payload = manager.result_payload(job.id)
        assert payload["job_id"] == job.id
        assert len(payload["cells"]) == 1
        cell = payload["cells"][0]
        assert cell["system"] == "vb" and cell["benchmark"] == "fft"
        assert cell["counters_sha"]

    def test_job_json_persisted_atomically(self, manager):
        job = manager.submit(SPEC)
        _wait(manager, job.id)
        on_disk = json.loads(
            (manager.job_dir(job.id) / "job.json").read_text())
        assert on_disk["state"] == "done"
        assert on_disk["spec"]["systems"] == ["vb"]

    def test_manifest_written_with_cache_key(self, manager):
        job = manager.submit(SPEC)
        _wait(manager, job.id)
        manifest = json.loads(
            (manager.job_dir(job.id) / "job-manifest.json").read_text())
        assert manifest["kind"] == "service-job"
        assert manifest["cache"]["simulated"] == 1

    def test_second_job_all_cache_hits(self, manager):
        first = _wait(manager, manager.submit(SPEC).id)
        second = _wait(manager, manager.submit(SPEC).id)
        assert second.cache["hits"] == 1
        assert second.cache["hit_rate"] == 1.0
        p1 = manager.result_payload(first.id)
        p2 = manager.result_payload(second.id)
        assert p1["cells"][0]["counters_sha"] == p2["cells"][0]["counters_sha"]
        assert p1["cells"][0]["counters"] == p2["cells"][0]["counters"]

    def test_stats(self, manager):
        _wait(manager, manager.submit(SPEC).id)
        stats = manager.stats()
        assert stats["jobs"]["total"] == 1
        assert stats["jobs"]["by_state"]["done"] == 1
        assert stats["store"]["entries"] == 1

    def test_list_jobs_newest_first(self, manager):
        a = manager.submit(SPEC)
        b = manager.submit(dict(SPEC, seed=6))
        _wait(manager, a.id)
        _wait(manager, b.id)
        listed = manager.list_jobs()
        assert [j.id for j in listed] == [b.id, a.id]


class TestRestartRecovery:
    def test_unfinished_job_resumes(self, tmp_path):
        # first server dies before the job runs: persist a queued job by
        # hand, exactly what submit() leaves on disk pre-crash
        data_dir = tmp_path / "svc"
        mgr1 = JobManager(data_dir=data_dir)
        spec = JobSpec.from_dict(SPEC)
        job = Job(id="deadbeef0001", spec=spec, state="queued")
        mgr1._persist(job)

        mgr2 = JobManager(data_dir=data_dir, job_workers=1)
        resumed = mgr2.start()
        try:
            assert resumed == ["deadbeef0001"]
            finished = _wait(mgr2, "deadbeef0001")
            assert finished.state == "done"
            assert finished.resumed
        finally:
            mgr2.close()

    def test_running_job_resumes_from_journal(self, tmp_path):
        # a job that died mid-run keeps its journal: the restarted run
        # restores completed cells instead of re-simulating them
        data_dir = tmp_path / "svc"
        mgr1 = JobManager(data_dir=data_dir, job_workers=1)
        mgr1.start()
        try:
            big = dict(SPEC, systems=["vb", "base"], benchmarks=["fft", "lu"])
            done = _wait(mgr1, mgr1.submit(big).id)
        finally:
            mgr1.close()
        # forge the crash: flip the finished job back to "running" and
        # clear the store so only the journal can satisfy the cells
        job_file = data_dir / "jobs" / done.id / "job.json"
        raw = json.loads(job_file.read_text())
        raw["state"] = "running"
        job_file.write_text(json.dumps(raw))
        sha_before = {
            (c["system"], c["benchmark"]): c["counters_sha"]
            for c in json.loads(
                (data_dir / "jobs" / done.id / "result.json").read_text()
            )["cells"]
        }
        mgr2 = JobManager(data_dir=data_dir, job_workers=1)
        mgr2.store.clear()
        resumed = mgr2.start()
        try:
            assert resumed == [done.id]
            finished = _wait(mgr2, done.id)
            assert finished.state == "done"
            # every cell came back from the journal, none re-simulated
            assert finished.cache["resumed"] == 4
            assert finished.cache["simulated"] == 0
            sha_after = {
                (c["system"], c["benchmark"]): c["counters_sha"]
                for c in mgr2.result_payload(done.id)["cells"]
            }
            assert sha_after == sha_before
        finally:
            mgr2.close()

    def test_finished_jobs_not_rerun(self, tmp_path):
        data_dir = tmp_path / "svc"
        mgr1 = JobManager(data_dir=data_dir, job_workers=1)
        mgr1.start()
        try:
            done = _wait(mgr1, mgr1.submit(SPEC).id)
        finally:
            mgr1.close()
        mgr2 = JobManager(data_dir=data_dir, job_workers=1)
        try:
            assert mgr2.start() == []
            assert mgr2.get(done.id).state == "done"
        finally:
            mgr2.close()

    def test_torn_job_json_skipped(self, tmp_path):
        data_dir = tmp_path / "svc"
        bad = data_dir / "jobs" / "torn0000",
        bad[0].mkdir(parents=True)
        (bad[0] / "job.json").write_text('{"id": "torn')
        mgr = JobManager(data_dir=data_dir)
        try:
            assert mgr.start() == []
            assert mgr.list_jobs() == []
        finally:
            mgr.close()


class TestFailureIsolation:
    def test_submit_before_start_raises(self, tmp_path):
        from repro.errors import ReproError

        mgr = JobManager(data_dir=tmp_path / "svc")
        with pytest.raises(ReproError, match="not started"):
            mgr.submit(SPEC)

    def test_bad_spec_never_enqueued(self, manager):
        with pytest.raises(JobSpecError):
            manager.submit({"systems": ["vb"]})
        assert manager.list_jobs() == []
