"""Tests for the job manager: spec validation, lifecycle, persistence,
restart recovery, and the shared result store."""

from __future__ import annotations

import json
import time

import pytest

from repro.errors import JobSpecError, ServiceUnavailableError
from repro.service.jobs import Job, JobManager, JobSpec
from repro.sim.runner import clear_trace_cache

REFS = 2_000
SPEC = {"systems": ["vb"], "benchmarks": ["fft"], "refs": REFS, "seed": 5,
        "scale": 0.02}


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
    clear_trace_cache()
    yield
    clear_trace_cache()


@pytest.fixture()
def manager(tmp_path):
    mgr = JobManager(data_dir=tmp_path / "svc", job_workers=2)
    mgr.start()
    yield mgr
    mgr.close()


def _wait(mgr, job_id, timeout=60.0):
    deadline = time.time() + timeout
    while time.time() < deadline:
        job = mgr.get(job_id)
        if job.state in ("done", "failed"):
            return job
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish")


class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec.from_dict(SPEC)
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_comma_separated_names(self):
        spec = JobSpec.from_dict(
            dict(SPEC, systems="vb, base", benchmarks="fft,lu"))
        assert spec.systems == ("vb", "base")
        assert spec.benchmarks == ("fft", "lu")

    @pytest.mark.parametrize("broken, needle", [
        ("not a dict", "JSON object"),
        ({}, "systems"),
        (dict(SPEC, systems=[]), "systems"),
        (dict(SPEC, benchmarks=["nope"]), "unknown benchmark"),
        (dict(SPEC, systems=["nosuch"]), "nosuch"),
        (dict(SPEC, refs="many"), "refs"),
        (dict(SPEC, refs=0), "refs"),
        (dict(SPEC, seed=-1), "seed"),
        (dict(SPEC, scale=0), "scale"),
        (dict(SPEC, engine="turbo"), "engine"),
        (dict(SPEC, jobs=0), "jobs"),
        (dict(SPEC, surprise=1), "unknown spec field"),
        (dict(SPEC, systems=["vb"] * 60, benchmarks=["fft"] * 10), "limit"),
    ])
    def test_rejects_bad_specs(self, broken, needle):
        with pytest.raises(JobSpecError, match=needle):
            JobSpec.from_dict(broken)


class TestLifecycle:
    def test_submit_runs_to_done(self, manager):
        job = manager.submit(SPEC)
        assert job.state in ("queued", "running", "done")  # live object
        finished = _wait(manager, job.id)
        assert finished.state == "done"
        assert finished.error is None
        assert finished.cache["total_cells"] == 1
        payload = manager.result_payload(job.id)
        assert payload["job_id"] == job.id
        assert len(payload["cells"]) == 1
        cell = payload["cells"][0]
        assert cell["system"] == "vb" and cell["benchmark"] == "fft"
        assert cell["counters_sha"]

    def test_job_json_persisted_atomically(self, manager):
        job = manager.submit(SPEC)
        _wait(manager, job.id)
        on_disk = json.loads(
            (manager.job_dir(job.id) / "job.json").read_text())
        assert on_disk["state"] == "done"
        assert on_disk["spec"]["systems"] == ["vb"]

    def test_manifest_written_with_cache_key(self, manager):
        job = manager.submit(SPEC)
        _wait(manager, job.id)
        manifest = json.loads(
            (manager.job_dir(job.id) / "job-manifest.json").read_text())
        assert manifest["kind"] == "service-job"
        assert manifest["cache"]["simulated"] == 1

    def test_second_job_all_cache_hits(self, manager):
        first = _wait(manager, manager.submit(SPEC).id)
        second = _wait(manager, manager.submit(SPEC).id)
        assert second.cache["hits"] == 1
        assert second.cache["hit_rate"] == 1.0
        p1 = manager.result_payload(first.id)
        p2 = manager.result_payload(second.id)
        assert p1["cells"][0]["counters_sha"] == p2["cells"][0]["counters_sha"]
        assert p1["cells"][0]["counters"] == p2["cells"][0]["counters"]

    def test_stats(self, manager):
        _wait(manager, manager.submit(SPEC).id)
        stats = manager.stats()
        assert stats["jobs"]["total"] == 1
        assert stats["jobs"]["by_state"]["done"] == 1
        assert stats["store"]["entries"] == 1

    def test_list_jobs_newest_first(self, manager):
        a = manager.submit(SPEC)
        b = manager.submit(dict(SPEC, seed=6))
        _wait(manager, a.id)
        _wait(manager, b.id)
        listed = manager.list_jobs()
        assert [j.id for j in listed] == [b.id, a.id]


class TestRestartRecovery:
    def test_unfinished_job_resumes(self, tmp_path):
        # first server dies before the job runs: persist a queued job by
        # hand, exactly what submit() leaves on disk pre-crash
        data_dir = tmp_path / "svc"
        mgr1 = JobManager(data_dir=data_dir)
        spec = JobSpec.from_dict(SPEC)
        job = Job(id="deadbeef0001", spec=spec, state="queued")
        mgr1._persist(job)

        mgr2 = JobManager(data_dir=data_dir, job_workers=1)
        resumed = mgr2.start()
        try:
            assert resumed == ["deadbeef0001"]
            finished = _wait(mgr2, "deadbeef0001")
            assert finished.state == "done"
            assert finished.resumed
        finally:
            mgr2.close()

    def test_running_job_resumes_from_journal(self, tmp_path):
        # a job that died mid-run keeps its journal: the restarted run
        # restores completed cells instead of re-simulating them
        data_dir = tmp_path / "svc"
        mgr1 = JobManager(data_dir=data_dir, job_workers=1)
        mgr1.start()
        try:
            big = dict(SPEC, systems=["vb", "base"], benchmarks=["fft", "lu"])
            done = _wait(mgr1, mgr1.submit(big).id)
        finally:
            mgr1.close()
        # forge the crash: flip the finished job back to "running" and
        # clear the store so only the journal can satisfy the cells
        job_file = data_dir / "jobs" / done.id / "job.json"
        raw = json.loads(job_file.read_text())
        raw["state"] = "running"
        job_file.write_text(json.dumps(raw))
        sha_before = {
            (c["system"], c["benchmark"]): c["counters_sha"]
            for c in json.loads(
                (data_dir / "jobs" / done.id / "result.json").read_text()
            )["cells"]
        }
        mgr2 = JobManager(data_dir=data_dir, job_workers=1)
        mgr2.store.clear()
        resumed = mgr2.start()
        try:
            assert resumed == [done.id]
            finished = _wait(mgr2, done.id)
            assert finished.state == "done"
            # every cell came back from the journal, none re-simulated
            assert finished.cache["resumed"] == 4
            assert finished.cache["simulated"] == 0
            sha_after = {
                (c["system"], c["benchmark"]): c["counters_sha"]
                for c in mgr2.result_payload(done.id)["cells"]
            }
            assert sha_after == sha_before
        finally:
            mgr2.close()

    def test_finished_jobs_not_rerun(self, tmp_path):
        data_dir = tmp_path / "svc"
        mgr1 = JobManager(data_dir=data_dir, job_workers=1)
        mgr1.start()
        try:
            done = _wait(mgr1, mgr1.submit(SPEC).id)
        finally:
            mgr1.close()
        mgr2 = JobManager(data_dir=data_dir, job_workers=1)
        try:
            assert mgr2.start() == []
            assert mgr2.get(done.id).state == "done"
        finally:
            mgr2.close()

    def test_torn_job_json_skipped(self, tmp_path):
        data_dir = tmp_path / "svc"
        bad = data_dir / "jobs" / "torn0000",
        bad[0].mkdir(parents=True)
        (bad[0] / "job.json").write_text('{"id": "torn')
        mgr = JobManager(data_dir=data_dir)
        try:
            assert mgr.start() == []
            assert mgr.list_jobs() == []
        finally:
            mgr.close()


class TestFailureIsolation:
    def test_submit_before_start_raises(self, tmp_path):
        from repro.errors import ReproError

        mgr = JobManager(data_dir=tmp_path / "svc")
        with pytest.raises(ReproError, match="not started"):
            mgr.submit(SPEC)

    def test_bad_spec_never_enqueued(self, manager):
        with pytest.raises(JobSpecError):
            manager.submit({"systems": ["vb"]})
        assert manager.list_jobs() == []


class _StalledExecutor:
    """Swallows submissions so jobs stay deterministically queued."""

    def submit(self, fn, *args):  # noqa: ARG002 - signature match
        return None

    def shutdown(self, wait=True, cancel_futures=False):  # noqa: ARG002
        return None


def _stalled_manager(tmp_path, **kwargs):
    mgr = JobManager(data_dir=tmp_path / "svc", **kwargs)
    mgr.start()
    mgr._executor.shutdown(wait=True)
    mgr._executor = _StalledExecutor()
    return mgr


class TestAdmissionControl:
    def test_queue_bound_rejects_with_503(self, tmp_path):
        mgr = _stalled_manager(tmp_path, max_queued_jobs=2,
                               max_inflight_cells=0)
        mgr.submit(SPEC)
        mgr.submit(dict(SPEC, seed=6))
        with pytest.raises(ServiceUnavailableError, match="queue full"):
            mgr.submit(dict(SPEC, seed=7))
        assert mgr.rejected == 1
        assert mgr.queued_jobs() == 2  # the rejected spec was never queued

    def test_cell_budget_counts_matrix_size(self, tmp_path):
        mgr = _stalled_manager(tmp_path, max_queued_jobs=0,
                               max_inflight_cells=3)
        big = dict(SPEC, systems=["vb", "base"], benchmarks=["fft", "lu"])
        with pytest.raises(ServiceUnavailableError, match="cell budget"):
            mgr.submit(big)  # 4 cells > 3 budget, even with nothing queued
        mgr.submit(SPEC)  # 1 cell fits
        with pytest.raises(ServiceUnavailableError):
            mgr.submit(dict(SPEC, systems=["vb", "base", "nc"]))  # 1+3 > 3

    def test_zero_disables_bounds(self, tmp_path):
        mgr = _stalled_manager(tmp_path, max_queued_jobs=0,
                               max_inflight_cells=0)
        for seed in range(5):
            mgr.submit(dict(SPEC, seed=seed))
        assert mgr.queued_jobs() == 5 and mgr.rejected == 0

    def test_rejection_carries_retry_hint(self, tmp_path):
        mgr = _stalled_manager(tmp_path, max_queued_jobs=1,
                               max_inflight_cells=0, retry_after_s=7.5)
        mgr.submit(SPEC)
        with pytest.raises(ServiceUnavailableError) as err:
            mgr.submit(dict(SPEC, seed=6))
        assert err.value.retry_after_s == 7.5

    def test_env_defaults(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_MAX_QUEUED_JOBS", "11")
        monkeypatch.setenv("REPRO_MAX_INFLIGHT_CELLS", "222")
        mgr = JobManager(data_dir=tmp_path / "svc")
        assert mgr.max_queued_jobs == 11
        assert mgr.max_inflight_cells == 222


class TestCancel:
    def test_cancel_queued_job(self, tmp_path):
        mgr = _stalled_manager(tmp_path)
        job = mgr.submit(SPEC)
        cancelled = mgr.cancel(job.id)
        assert cancelled.state == "cancelled"
        assert cancelled.finished_unix is not None
        on_disk = json.loads((mgr.job_dir(job.id) / "job.json").read_text())
        assert on_disk["state"] == "cancelled"

    def test_cancel_is_idempotent(self, tmp_path):
        mgr = _stalled_manager(tmp_path)
        job = mgr.submit(SPEC)
        mgr.cancel(job.id)
        again = mgr.cancel(job.id)
        assert again.state == "cancelled"

    def test_cancel_unknown_returns_none(self, tmp_path):
        mgr = _stalled_manager(tmp_path)
        assert mgr.cancel("nosuchjob0000") is None

    def test_cancel_terminal_job_untouched(self, manager):
        job = _wait(manager, manager.submit(SPEC).id)
        assert manager.cancel(job.id).state == "done"

    def test_cancel_running_job_stops_at_cell_boundary(self, tmp_path):
        # a real running sweep: many cells, tiny refs, 1 worker thread
        mgr = JobManager(data_dir=tmp_path / "svc", job_workers=1)
        mgr.start()
        try:
            big = dict(SPEC, systems=["vb", "base", "nc", "ncd"],
                       benchmarks=["fft", "lu", "radix"], refs=5000)
            job = mgr.submit(big)
            deadline = time.time() + 30
            while mgr.get(job.id).state == "queued" and time.time() < deadline:
                time.sleep(0.005)
            mgr.cancel(job.id)
            deadline = time.time() + 30
            while (mgr.get(job.id).state not in ("cancelled", "done")
                   and time.time() < deadline):
                time.sleep(0.01)
            # "done" is legal if the sweep beat the abort; either way the
            # job is terminal and persisted
            final = mgr.get(job.id)
            assert final.state in ("cancelled", "done")
            on_disk = json.loads(
                (mgr.job_dir(job.id) / "job.json").read_text())
            assert on_disk["state"] == final.state
        finally:
            mgr.close()


class TestDrain:
    def test_draining_rejects_submissions(self, tmp_path):
        mgr = _stalled_manager(tmp_path)
        mgr.begin_drain()
        with pytest.raises(ServiceUnavailableError, match="draining"):
            mgr.submit(SPEC)
        assert mgr.health() == "draining"

    def test_drain_preserves_queued_jobs(self, tmp_path):
        mgr = _stalled_manager(tmp_path)
        a = mgr.submit(SPEC)
        b = mgr.submit(dict(SPEC, seed=6))
        summary = mgr.drain(timeout=0.1)
        assert summary["queued"] == 2 and summary["aborted"] == 0
        # the persisted queue order survives: a restart resumes both,
        # oldest first
        mgr2 = JobManager(data_dir=tmp_path / "svc", job_workers=1)
        resumed = mgr2.start()
        try:
            assert resumed == [a.id, b.id]
            assert _wait(mgr2, a.id).state == "done"
            assert _wait(mgr2, b.id).state == "done"
        finally:
            mgr2.close()

    def test_drain_parks_running_job_for_resume(self, tmp_path):
        mgr = JobManager(data_dir=tmp_path / "svc", job_workers=1)
        mgr.start()
        big = dict(SPEC, systems=["vb", "base", "nc", "ncd"],
                   benchmarks=["fft", "lu", "radix"], refs=5000)
        job = mgr.submit(big)
        deadline = time.time() + 30
        while mgr.get(job.id).state == "queued" and time.time() < deadline:
            time.sleep(0.005)
        mgr.drain(timeout=0.0)  # no grace: abort at the next cell boundary
        parked = mgr.get(job.id)
        assert parked.state in ("queued", "done")  # done if it won the race
        mgr2 = JobManager(data_dir=tmp_path / "svc", job_workers=1)
        mgr2.start()
        try:
            finished = _wait(mgr2, job.id)
            assert finished.state == "done"
            assert finished.cache["total_cells"] == 12
        finally:
            mgr2.close()


class TestGarbageCollection:
    def test_ttl_reaps_terminal_jobs(self, manager):
        job = _wait(manager, manager.submit(SPEC).id)
        manager.job_ttl_s = 10.0
        assert manager.gc_terminal_jobs(now=time.time() + 5) == 0
        assert manager.gc_terminal_jobs(now=time.time() + 11) == 1
        assert manager.get(job.id) is None
        assert not manager.job_dir(job.id).exists()
        assert manager.expired == 1

    def test_no_ttl_keeps_everything(self, manager):
        job = _wait(manager, manager.submit(SPEC).id)
        assert manager.job_ttl_s is None
        assert manager.gc_terminal_jobs(now=time.time() + 1e9) == 0
        assert manager.get(job.id) is not None

    def test_gc_spares_active_jobs(self, tmp_path):
        mgr = _stalled_manager(tmp_path, job_ttl_s=0.001)
        job = mgr.submit(SPEC)  # stays queued forever
        assert mgr.gc_terminal_jobs(now=time.time() + 1e6) == 0
        assert mgr.get(job.id).state == "queued"


class TestHealth:
    def test_ok_by_default(self, tmp_path):
        mgr = _stalled_manager(tmp_path)
        assert mgr.health() == "ok"

    def test_degraded_follows_store(self, tmp_path):
        mgr = _stalled_manager(tmp_path)
        mgr.store.degraded = True
        assert mgr.health() == "degraded"
        mgr.store.degraded = False
        assert mgr.health() == "ok"

    def test_draining_wins_over_degraded(self, tmp_path):
        mgr = _stalled_manager(tmp_path)
        mgr.store.degraded = True
        mgr.begin_drain()
        assert mgr.health() == "draining"

    def test_stats_exposes_admission_and_lifecycle(self, tmp_path):
        mgr = _stalled_manager(tmp_path, max_queued_jobs=9,
                               max_inflight_cells=99)
        mgr.submit(SPEC)
        stats = mgr.stats()
        assert stats["health"] == "ok"
        assert stats["admission"]["queued"] == 1
        assert stats["admission"]["inflight_cells"] == 1
        assert stats["admission"]["max_queued_jobs"] == 9
        assert stats["admission"]["max_inflight_cells"] == 99
        assert stats["admission"]["rejected"] == 0
        assert stats["lifecycle"]["draining"] is False


class TestListLimit:
    def test_limit_zero_returns_empty(self, tmp_path):
        mgr = _stalled_manager(tmp_path)
        mgr.submit(SPEC)
        assert mgr.list_jobs(limit=0) == []
        assert len(mgr.list_jobs(limit=1)) == 1
        assert len(mgr.list_jobs()) == 1
