"""Protocol fuzzer: determinism, bug detection, shrinking, replay."""

from __future__ import annotations

import json

import pytest

from repro.check.fuzz import (
    DEFAULT_FUZZ_SYSTEMS,
    STRATEGIES,
    FuzzCase,
    generate_case,
    replay_artifact,
    run_case,
    run_fuzz,
    shrink_case,
)
from repro.coherence.states import NCState
from repro.rdc.victim import VictimNC


def test_generation_is_deterministic():
    for strategy in STRATEGIES:
        a = generate_case("vxp2", 42, strategy)
        b = generate_case("vxp2", 42, strategy)
        assert a.events == b.events
    # different seeds give different streams
    assert (
        generate_case("vb", 1, "random_walk").events
        != generate_case("vb", 2, "random_walk").events
    )


def test_clean_protocol_survives_fuzzing(tmp_path):
    report = run_fuzz(
        seed=1, max_cases=2 * len(DEFAULT_FUZZ_SYSTEMS),
        out_dir=str(tmp_path), case_length=160,
    )
    assert report.ok
    assert report.cases_run == 2 * len(DEFAULT_FUZZ_SYSTEMS)


def test_case_json_round_trip():
    case = generate_case("ncs", 7, "upgrade_race")
    clone = FuzzCase.from_dict(json.loads(json.dumps(case.as_dict())))
    assert clone == case


@pytest.fixture
def dropped_dirty_bit(monkeypatch):
    """Inject: the victim NC silently cleans dirty write-backs."""
    monkeypatch.setattr(
        VictimNC,
        "accept_dirty_victim",
        lambda self, block: self._accept(block, NCState.CLEAN),
    )


def test_fuzzer_finds_injected_bug_and_shrinks(dropped_dirty_bit, tmp_path):
    report = run_fuzz(
        seed=2, max_cases=4 * len(DEFAULT_FUZZ_SYSTEMS),
        out_dir=str(tmp_path), case_length=192,
    )
    assert not report.ok
    failure = report.failures[0]
    assert len(failure.case.events) < failure.original_length
    assert failure.artifact_path is not None
    # the artifact replays to the same failure while the bug is in place
    verdict = replay_artifact(failure.artifact_path)
    assert verdict["reproduced"] and verdict["error"] == failure.error


def test_shrinking_is_deterministic(dropped_dirty_bit):
    # find one failing case, then shrink it twice: identical minimal traces
    case = None
    signature = None
    for i in range(64):
        system = DEFAULT_FUZZ_SYSTEMS[i % len(DEFAULT_FUZZ_SYSTEMS)]
        strategy = STRATEGIES[(i // len(DEFAULT_FUZZ_SYSTEMS)) % len(STRATEGIES)]
        candidate = generate_case(system, 20_000 + i, strategy)
        result = run_case(candidate)
        if result is not None:
            case, signature = candidate, result[0]
            break
    assert case is not None, "injected bug never triggered in 64 cases"
    first = shrink_case(case, signature)
    second = shrink_case(case, signature)
    assert first.events == second.events
    assert run_case(first) is not None  # still fails after shrinking


def test_healed_artifact_replays_clean(tmp_path, monkeypatch):
    # write an artifact while broken, replay after the monkeypatch is undone
    with monkeypatch.context() as m:
        m.setattr(
            VictimNC,
            "accept_dirty_victim",
            lambda self, block: self._accept(block, NCState.CLEAN),
        )
        report = run_fuzz(
            seed=3, max_cases=4 * len(DEFAULT_FUZZ_SYSTEMS),
            out_dir=str(tmp_path), case_length=192,
        )
        assert not report.ok
        path = report.failures[0].artifact_path
    verdict = replay_artifact(path)
    assert not verdict["reproduced"]
