"""Exhaustive model checker: golden state counts and violation detection.

The golden values pin the *reachable state space* of each tiny
configuration — any protocol change that adds, removes, or re-shapes
reachable states shows up here as a count drift, long before it shifts a
paper figure.  The injected-violation tests prove the checker actually
catches bugs and reports a minimal event path.
"""

from __future__ import annotations

import os

import pytest

from repro.check.explore import (
    DEFAULT_VARIANTS,
    explore_variant,
    tiny_check_config,
)
from repro.coherence.directory import Directory
from repro.coherence.states import NCState
from repro.errors import ModelCheckViolation, VerificationError
from repro.rdc.victim import VictimNC

# (states, transitions, max_depth) for the default tiny geometry
# (2 clusters x 2 procs, 1-line L1, 2-line NC, 2 blocks, fixed threshold 1)
GOLDEN = {
    "base": (1869, 29904, 7),
    "nc": (2969, 47504, 7),
    "ncd": (2969, 47504, 7),
    "ncs": (3701, 59216, 9),
    "vb": (2917, 46672, 8),
    "vp": (2917, 46672, 8),
    "p2": (6761, 108176, 11),
    "vbp2": (9665, 154640, 13),
    "vxp2": (9325, 149200, 10),
}

#: the page-cache variants have the largest state spaces (~10 s each);
#: they are explored on every CI run by ``repro check --explore`` and here
#: only when REPRO_CHECK_FULL is set
_HEAVY = {"p2", "vbp2", "vxp2"}

_run_heavy = pytest.mark.skipif(
    not os.environ.get("REPRO_CHECK_FULL"),
    reason="heavy exploration; set REPRO_CHECK_FULL=1 (CI covers it via "
    "`repro check --explore`)",
)


def test_goldens_cover_default_variants():
    assert set(GOLDEN) == set(DEFAULT_VARIANTS)


@pytest.mark.parametrize(
    "system",
    [
        pytest.param(s, marks=_run_heavy) if s in _HEAVY else s
        for s in DEFAULT_VARIANTS
    ],
)
def test_exhaustive_exploration_matches_golden(system):
    report = explore_variant(system)
    assert (report.n_states, report.n_transitions, report.max_depth) == GOLDEN[
        system
    ], f"reachable state space of {system} changed"


def test_self_check_round_trip():
    # canonical -> load -> canonical identity on every explored state
    report = explore_variant("vb", self_check=True)
    assert report.n_states == GOLDEN["vb"][0]


def test_tiny_config_geometry():
    config, dataset = tiny_check_config("vxp2")
    assert config.n_nodes == 2 and config.procs_per_node == 2
    assert config.cache.assoc == 1 and config.cache.n_sets == 1
    assert dataset >= 2 * config.block_size


def test_max_states_overflow_raises():
    with pytest.raises(VerificationError, match="exceeded"):
        explore_variant("base", max_states=10)


def test_injected_lost_invalidation_is_caught(monkeypatch):
    """A directory that grants upgrades without invalidating other copies
    must be caught, with a short (minimal) event path."""
    original = Directory.upgrade

    def broken_upgrade(self, block, cluster):
        original(self, block, cluster)
        return ()  # swallow the invalidation list

    monkeypatch.setattr(Directory, "upgrade", broken_upgrade)
    with pytest.raises(ModelCheckViolation) as exc_info:
        explore_variant("base")
    violation = exc_info.value
    assert violation.system == "base"
    # BFS guarantees minimality; two clusters must each touch the block
    # and one must write, so the path is short but not trivial
    assert 2 <= len(violation.path) <= 6
    assert "->" in str(violation)


def test_injected_dropped_dirty_bit_is_caught(monkeypatch):
    """A victim NC that silently cleans dirty write-backs loses the only
    up-to-date copy; the checker must notice."""
    monkeypatch.setattr(
        VictimNC,
        "accept_dirty_victim",
        lambda self, block: self._accept(block, NCState.CLEAN),
    )
    with pytest.raises(ModelCheckViolation) as exc_info:
        explore_variant("vb")
    assert exc_info.value.path  # a concrete minimal reproduction exists
