"""Differential oracle: simulator agreement, value model, parallel identity."""

from __future__ import annotations

import pytest

from repro.check.oracle import (
    OracleSimulator,
    diff_cell,
    diff_parallel_sweep,
    machine_snapshot,
)
from repro.coherence.states import NCState
from repro.errors import ConfigurationError, OracleDivergenceError
from repro.params import BusProtocol
from repro.rdc.victim import VictimNC
from repro.sim.runner import get_trace
from repro.sim.simulator import Simulator
from repro.system.builder import build_machine, system_config
from repro.trace.synthetic import BENCHMARK_NAMES

REFS = 2_000
SCALE = 0.03125


@pytest.mark.parametrize("bench", sorted(BENCHMARK_NAMES))
def test_oracle_agrees_on_every_benchmark(bench):
    # one NC-less, one victim-NC, one full page-cache system per benchmark
    for system in ("base", "vp", "vxp2"):
        diff_cell(system, bench, refs=REFS, seed=1, scale=SCALE)


@pytest.mark.parametrize(
    "system", ["nc", "ncd", "ncs", "vb", "p2", "vbp2"]
)
def test_oracle_agrees_on_every_nc_variant(system):
    diff_cell(system, "radix", refs=REFS, seed=2, scale=SCALE)
    diff_cell(system, "ocean", refs=REFS, seed=2, scale=SCALE)


def test_oracle_counters_and_state_match_simulator():
    config = system_config("vbp2")
    trace = get_trace("fft", refs=REFS, seed=3, scale=SCALE)
    machine = build_machine(config, dataset_bytes=trace.dataset_bytes)
    sim = Simulator(machine)
    sim.run(trace)
    oracle = OracleSimulator(config, dataset_bytes=trace.dataset_bytes)
    oracle.run(trace)
    assert sim.counters.as_dict() == oracle.counters.as_dict()
    assert machine_snapshot(machine) == oracle.snapshot()


def test_oracle_rejects_moesir():
    config = system_config("vb", protocol=BusProtocol.MOESIR)
    with pytest.raises(ConfigurationError, match="MESIR"):
        OracleSimulator(config)


def test_divergence_is_detected_and_localised(monkeypatch):
    """With a bug injected into the optimised simulator only, diff_cell
    must raise and name the first diverging reference."""
    monkeypatch.setattr(
        VictimNC,
        "accept_dirty_victim",
        lambda self, block: self._accept(block, NCState.CLEAN),
    )
    with pytest.raises(OracleDivergenceError) as exc_info:
        diff_cell("vb", "radix", refs=REFS, seed=1, scale=SCALE)
    err = exc_info.value
    assert err.system == "vb" and err.benchmark == "radix"


def test_serial_and_parallel_sweeps_bit_identical():
    n = diff_parallel_sweep(
        ["base", "vp"], ["fft", "radix"], refs=REFS, seed=1, scale=SCALE, jobs=2
    )
    assert n == 4


def test_parallel_diff_now_covers_profiles_and_conservation(monkeypatch):
    """diff_parallel_sweep runs both sweeps profiled: the metrics
    snapshots (profile counters, histograms, series included) must be
    bit-identical and every cell must conserve Eq. 1 exactly — and the
    caller's REPRO_PROFILE setting must be restored afterwards."""
    import os

    from repro.obs.profile import PROFILE_ENV

    monkeypatch.delenv(PROFILE_ENV, raising=False)
    n = diff_parallel_sweep(
        ["vb", "vpp5"], ["radix"], refs=REFS, seed=1, scale=SCALE, jobs=2
    )
    assert n == 2
    assert PROFILE_ENV not in os.environ

    monkeypatch.setenv(PROFILE_ENV, "0")
    diff_parallel_sweep(["base"], ["fft"], refs=REFS, seed=1, scale=SCALE)
    assert os.environ[PROFILE_ENV] == "0"


def test_parallel_diff_catches_broken_attribution(monkeypatch):
    """A profiler that mis-charges a component must fail conservation."""
    from repro.check import oracle as oracle_mod
    from repro.obs.profile import StallProfiler

    original = StallProfiler.on_remote

    def lossy(self, now, is_write):
        # drop every second remote read from the attribution
        original(self, now, is_write)
        if not is_write and self.reads["remote_miss"] % 2 == 0:
            self.reads["remote_miss"] -= 1

    monkeypatch.setattr(StallProfiler, "on_remote", lossy)
    with pytest.raises(OracleDivergenceError, match="conservation"):
        oracle_mod.diff_parallel_sweep(
            ["base"], ["radix"], refs=REFS, seed=1, scale=SCALE, jobs=1
        )
