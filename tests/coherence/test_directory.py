"""Unit tests for the full-map, non-notifying home directory."""

from __future__ import annotations

import pytest

from repro.coherence.directory import Directory
from repro.errors import ProtocolError
from repro.stats import MissClass


@pytest.fixture
def d():
    return Directory(n_nodes=4)


class TestAccess:
    def test_first_access_is_necessary(self, d):
        reply = d.access(0x10, 1, False)
        assert reply.miss_class is MissClass.NECESSARY
        assert reply.owner_to_flush is None
        assert reply.invalidate == ()

    def test_reaccess_is_capacity(self, d):
        d.access(0x10, 1, False)
        reply = d.access(0x10, 1, False)
        assert reply.miss_class is MissClass.CAPACITY

    def test_read_sets_presence(self, d):
        d.access(0x10, 1, False)
        assert d.is_present(0x10, 1)
        assert not d.is_present(0x10, 2)

    def test_write_claims_ownership(self, d):
        d.access(0x10, 1, True)
        assert d.owner(0x10) == 1
        assert d.presence_mask(0x10) == 0b0010

    def test_write_invalidates_other_sharers(self, d):
        d.access(0x10, 0, False)
        d.access(0x10, 2, False)
        reply = d.access(0x10, 1, True)
        assert set(reply.invalidate) == {0, 2}
        assert d.presence_mask(0x10) == 0b0010

    def test_write_after_write_flushes_owner(self, d):
        d.access(0x10, 0, True)
        reply = d.access(0x10, 1, True)
        assert reply.owner_to_flush == 0
        assert 0 in reply.invalidate
        assert d.owner(0x10) == 1

    def test_read_of_dirty_block_clears_owner(self, d):
        d.access(0x10, 0, True)
        reply = d.access(0x10, 1, False)
        assert reply.owner_to_flush == 0
        assert d.owner(0x10) is None
        assert d.is_present(0x10, 0)  # still a sharer

    def test_invalidated_cluster_refetch_is_necessary(self, d):
        d.access(0x10, 0, False)
        d.access(0x10, 1, True)  # invalidates cluster 0
        reply = d.access(0x10, 0, False)
        assert reply.miss_class is MissClass.NECESSARY

    def test_owner_rerequest_raises(self, d):
        d.access(0x10, 0, True)
        with pytest.raises(ProtocolError):
            d.access(0x10, 0, False)


class TestUpgrade:
    def test_upgrade_unknown_block_registers(self, d):
        invalidate = d.upgrade(0x20, 2)
        assert invalidate == ()
        assert d.owner(0x20) == 2

    def test_upgrade_invalidates_sharers(self, d):
        d.access(0x20, 0, False)
        d.access(0x20, 3, False)
        invalidate = d.upgrade(0x20, 0)
        assert invalidate == (3,)
        assert d.presence_mask(0x20) == 0b0001

    def test_upgrade_by_owner_allowed(self, d):
        d.access(0x20, 0, True)
        assert d.upgrade(0x20, 0) == ()

    def test_upgrade_while_other_owner_raises(self, d):
        d.access(0x20, 0, True)
        with pytest.raises(ProtocolError):
            d.upgrade(0x20, 1)


class TestWriteback:
    def test_writeback_clears_owner_keeps_presence(self, d):
        d.access(0x30, 2, True)
        d.writeback(0x30, 2)
        assert d.owner(0x30) is None
        assert d.is_present(0x30, 2)  # the R-NUMA modification

    def test_writeback_by_non_owner_raises(self, d):
        d.access(0x30, 2, True)
        with pytest.raises(ProtocolError):
            d.writeback(0x30, 1)

    def test_writeback_of_unknown_block_raises(self, d):
        with pytest.raises(ProtocolError):
            d.writeback(0x99, 0)

    def test_capacity_after_writeback(self, d):
        """Presence bits stay on across write-backs => capacity on refetch."""
        d.access(0x30, 2, True)
        d.writeback(0x30, 2)
        reply = d.access(0x30, 2, False)
        assert reply.miss_class is MissClass.CAPACITY


class TestInspection:
    def test_entries_created_lazily(self, d):
        assert d.n_entries() == 0
        d.access(1, 0, False)
        d.access(2, 0, False)
        assert d.n_entries() == 2

    def test_presence_mask_of_unknown_block(self, d):
        assert d.presence_mask(0xDEAD) == 0
        assert d.owner(0xDEAD) is None
