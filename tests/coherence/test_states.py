"""Unit tests for the MESIR / NC / PC state enumerations."""

from repro.coherence.states import MESIR, NCState, PCBlockState


class TestMESIR:
    def test_validity(self):
        assert not MESIR.I.is_valid
        for st in (MESIR.S, MESIR.E, MESIR.M, MESIR.R):
            assert st.is_valid

    def test_dirty_only_m(self):
        assert MESIR.M.is_dirty
        for st in (MESIR.I, MESIR.S, MESIR.E, MESIR.R):
            assert not st.is_dirty

    def test_masters(self):
        """M, E, and R answer bus replacement/ownership duties; S and I don't."""
        assert MESIR.M.is_master and MESIR.E.is_master and MESIR.R.is_master
        assert not MESIR.S.is_master and not MESIR.I.is_master

    def test_int_values_stable(self):
        # the simulator caches these as plain ints
        assert int(MESIR.I) == 0 and int(MESIR.M) == 3 and int(MESIR.R) == 4


class TestNCState:
    def test_validity(self):
        assert not NCState.INVALID.is_valid
        assert NCState.CLEAN.is_valid and NCState.DIRTY.is_valid


class TestPCBlockState:
    def test_validity(self):
        assert not PCBlockState.INVALID.is_valid
        assert PCBlockState.CLEAN.is_valid and PCBlockState.DIRTY.is_valid

    def test_values_match_ncstate(self):
        # the simulator compares them interchangeably
        assert int(PCBlockState.CLEAN) == int(NCState.CLEAN)
        assert int(PCBlockState.DIRTY) == int(NCState.DIRTY)
