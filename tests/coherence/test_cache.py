"""Unit tests for the generic set-associative LRU cache."""

from __future__ import annotations

import pytest

from repro.coherence.cache import SetAssocCache
from repro.errors import ConfigurationError
from repro.params import CacheGeometry


@pytest.fixture
def cache():
    # 1 KB, 2-way, 64 B blocks -> 16 blocks, 8 sets
    return SetAssocCache(CacheGeometry(1024, 2))


class TestGeometry:
    def test_counts(self, cache):
        assert cache.assoc == 2
        assert cache.n_sets == 8

    def test_indexing_masks_low_bits(self, cache):
        assert cache.set_index(0) == 0
        assert cache.set_index(8) == 0
        assert cache.set_index(9) == 1

    def test_page_index_shift(self):
        c = SetAssocCache(CacheGeometry(1024, 2), index_shift=6)
        # blocks 0..63 (one 4 KB page) all land in set 0
        assert {c.set_index(b) for b in range(64)} == {0}
        assert c.set_index(64) == 1

    def test_negative_shift_rejected(self):
        with pytest.raises(ConfigurationError):
            SetAssocCache(CacheGeometry(1024, 2), index_shift=-1)


class TestLookupInsert:
    def test_miss_returns_none(self, cache):
        assert cache.lookup(5) is None

    def test_insert_then_lookup(self, cache):
        cache.insert(5, 3)
        line = cache.lookup(5)
        assert line is not None and line.state == 3

    def test_insert_returns_no_victim_when_room(self, cache):
        assert cache.insert(0, 1) is None
        assert cache.insert(8, 1) is None  # same set, second way

    def test_lru_eviction_order(self, cache):
        cache.insert(0, 1)
        cache.insert(8, 1)
        victim = cache.insert(16, 1)  # same set: evicts LRU = block 0
        assert victim is not None and victim.block == 0
        assert 8 in cache and 16 in cache

    def test_lookup_promotes_to_mru(self, cache):
        cache.insert(0, 1)
        cache.insert(8, 1)
        cache.lookup(0)  # promote
        victim = cache.insert(16, 1)
        assert victim.block == 8

    def test_peek_does_not_promote(self, cache):
        cache.insert(0, 1)
        cache.insert(8, 1)
        cache.peek(0)
        victim = cache.insert(16, 1)
        assert victim.block == 0

    def test_different_sets_do_not_interfere(self, cache):
        cache.insert(0, 1)
        cache.insert(1, 1)
        cache.insert(8, 1)
        cache.insert(9, 1)
        assert len(cache) == 4

    def test_victim_candidate_matches_insert(self, cache):
        cache.insert(0, 1)
        cache.insert(8, 1)
        cand = cache.victim_candidate(16)
        victim = cache.insert(16, 1)
        assert cand is victim

    def test_victim_candidate_none_when_room(self, cache):
        cache.insert(0, 1)
        assert cache.victim_candidate(8) is None


class TestRemove:
    def test_remove_returns_line(self, cache):
        cache.insert(3, 2)
        line = cache.remove(3)
        assert line.block == 3 and line.state == 2
        assert 3 not in cache

    def test_remove_absent_returns_none(self, cache):
        assert cache.remove(3) is None

    def test_clear(self, cache):
        for b in range(16):
            cache.insert(b, 1)
        cache.clear()
        assert len(cache) == 0


class TestInspection:
    def test_len_counts_all_sets(self, cache):
        for b in range(16):
            cache.insert(b, 1)
        assert len(cache) == 16

    def test_occupancy(self, cache):
        assert cache.occupancy() == 0.0
        for b in range(8):
            cache.insert(b, 1)
        assert cache.occupancy() == pytest.approx(0.5)

    def test_lines_iterates_everything(self, cache):
        inserted = {0, 1, 8, 9}
        for b in inserted:
            cache.insert(b, 1)
        assert {ln.block for ln in cache.lines()} == inserted
        assert set(cache.blocks()) == inserted

    def test_set_lines_exposes_lru_order(self, cache):
        cache.insert(0, 1)
        cache.insert(8, 1)
        lines = cache.set_lines(0)
        assert [ln.block for ln in lines] == [0, 8]  # LRU first
