"""Smoke + structure tests for the ablation drivers."""

from __future__ import annotations


from repro.experiments import BENCHES, ablations

TINY = 8_000


def test_ostate_columns():
    r = ablations.ostate(refs=TINY)
    labels = {k[0] for k in r.data}
    assert {"mesir", "moesir", "mesir:wb", "moesir:wb"} == labels
    # the paper's conclusion: stall near-identical across protocols
    for b in BENCHES:
        m, o = r.data[("mesir", b)], r.data[("moesir", b)]
        assert o <= m * 1.2 + 0.5


def test_decrement_columns():
    r = ablations.decrement(refs=TINY)
    labels = {k[0] for k in r.data}
    assert {"base", "decrement", "base:rel", "decrement:rel"} == labels
    for b in BENCHES:
        # decrementing counters can only slow relocation down
        assert r.data[("decrement:rel", b)] <= r.data[("base:rel", b)] + 1e-9


def test_counter_sharing_columns():
    r = ablations.counter_sharing(refs=TINY)
    labels = {k[0] for k in r.data}
    assert {"share1", "share2", "share4", "share8"} <= labels


def test_nc_size_monotone_for_capacity_apps():
    r = ablations.nc_size(refs=60_000)
    # a bigger victim NC can only help (no inclusion): normalised stall
    # must be non-increasing in NC size, modulo small indexing noise
    for b in BENCHES:
        small = r.data[("vb1k", b)]
        large = r.data[("vb64k", b)]
        assert large <= small * 1.05 + 1e-9
