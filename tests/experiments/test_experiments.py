"""Smoke + structure tests for every experiment driver.

Each driver runs at a very small trace length; the tests assert the
regenerated table has the paper's rows and columns, not specific values
(shape assertions at realistic fidelity live in tests/integration).
"""

from __future__ import annotations

import pytest

from repro.experiments import ALL_EXPERIMENTS, BENCHES
from repro.experiments import (
    fig03,
    fig04,
    fig05,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig11,
    tables,
)

TINY = 8_000


class TestRegistry:
    def test_all_experiments_registered(self):
        assert set(ALL_EXPERIMENTS) == {
            "table1", "table2", "table3",
            "fig03", "fig04", "fig05", "fig06", "fig07", "fig08",
            "fig09", "fig10", "fig11",
            "abl_ostate", "abl_decrement", "abl_counter_sharing",
            "abl_nc_size",
        }


class TestTables:
    def test_table1_reflects_latency_model(self):
        t = tables.table1()
        assert "13" in t.table and "33" in t.table

    def test_table2_lists_all_events(self):
        t = tables.table2()
        for token in ("DRAM access", "Tag checking", "225"):
            assert token in t.table

    def test_table3_lists_all_benchmarks(self):
        t = tables.table3()
        for name in BENCHES:
            assert name in t.table


@pytest.mark.parametrize(
    "module,columns",
    [
        (fig04, ["nc", "vb"]),
        (fig05, ["vb", "vp"]),
        (fig08, ["vbp5", "vpp5"]),
    ],
)
def test_two_column_figures(module, columns):
    result = module.run(refs=TINY)
    for bench in BENCHES:
        assert bench in result.table
    for col, b in [(c, b) for c in columns for b in BENCHES]:
        assert (col, b) in result.data


def test_fig03_has_nine_configurations():
    result = fig03.run(refs=TINY)
    labels = {k[0] for k in result.data}
    assert len(labels) == 9
    assert "2w-vb16" in labels and "1w-vb0" in labels


def test_fig06_compares_policies():
    result = fig06.run(refs=TINY)
    assert {k[0] for k in result.data} == {"adaptive", "fixed"}


def test_fig07_has_twelve_columns():
    result = fig07.run(refs=TINY)
    labels = {k[0] for k in result.data}
    assert len(labels) == 12
    assert {"base", "nc", "vb", "p5", "ncp9", "vbp7"} <= labels


def test_fig09_normalises_to_dinf():
    result = fig09.run(refs=TINY)
    assert ("base", "lu") in result.data
    assert all(v >= 0 for v in result.data.values())
    # NCS can never be worse than base (same misses, faster service)
    for b in BENCHES:
        assert result.data[("ncs", b)] <= result.data[("base", b)] + 1e-9


def test_fig10_traffic_normalised():
    result = fig10.run(refs=TINY)
    assert ("vbp", "radix") in result.data
    assert all(v >= 0 for v in result.data.values())


def test_fig11_threshold_variants():
    result = fig11.run(refs=TINY)
    assert {k[0] for k in result.data} == {"ncp5", "vxp5-t32", "vxp5-t64"}


def test_experiment_result_str_contains_title():
    result = fig04.run(refs=TINY)
    assert "fig04" in str(result)
