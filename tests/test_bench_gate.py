"""Unit tests for scripts/check_bench_regression.py (the throughput gate).

The script is not a package module, so it is loaded by file path.  The
cases pin the mismatch behaviour: a committed floor with no measurement,
a measurement with no committed floor, and malformed files must all fail
with a clear message — never a ``KeyError`` traceback.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

_SCRIPT = Path(__file__).resolve().parent.parent / "scripts" / "check_bench_regression.py"


@pytest.fixture(scope="module")
def gate():
    spec = importlib.util.spec_from_file_location("check_bench_regression", _SCRIPT)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _bench_json(path: Path, rates: dict) -> str:
    doc = {
        "benchmarks": [
            {"name": name, "extra_info": {"refs_per_sec": rate}}
            for name, rate in rates.items()
        ]
    }
    path.write_text(json.dumps(doc))
    return str(path)


def _baseline_json(path: Path, floors) -> str:
    path.write_text(json.dumps({"refs_per_sec": floors}))
    return str(path)


class TestGateVerdicts:
    def test_passes_at_floor(self, gate, tmp_path, capsys):
        cur = _bench_json(tmp_path / "cur.json", {"t[a]": 1000.0})
        base = _baseline_json(tmp_path / "base.json", {"t[a]": 1000})
        assert gate.main([cur, base]) == 0
        assert "passed" in capsys.readouterr().out

    def test_fails_below_tolerance(self, gate, tmp_path, capsys):
        cur = _bench_json(tmp_path / "cur.json", {"t[a]": 700.0})
        base = _baseline_json(tmp_path / "base.json", {"t[a]": 1000})
        assert gate.main([cur, base]) == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_tolerance_is_configurable(self, gate, tmp_path):
        cur = _bench_json(tmp_path / "cur.json", {"t[a]": 700.0})
        base = _baseline_json(tmp_path / "base.json", {"t[a]": 1000})
        assert gate.main([cur, base, "--tolerance", "0.5"]) == 0


class TestMismatches:
    def test_floor_without_measurement_fails_clearly(self, gate, tmp_path, capsys):
        cur = _bench_json(tmp_path / "cur.json", {"t[a]": 1000.0})
        base = _baseline_json(
            tmp_path / "base.json", {"t[a]": 1000, "t[gone]": 500}
        )
        assert gate.main([cur, base]) == 1
        err = capsys.readouterr().err
        assert "t[gone]" in err and "no measurement" in err

    def test_measurement_without_floor_fails_clearly(self, gate, tmp_path, capsys):
        cur = _bench_json(
            tmp_path / "cur.json", {"t[a]": 1000.0, "t[new]": 2000.0}
        )
        base = _baseline_json(tmp_path / "base.json", {"t[a]": 1000})
        assert gate.main([cur, base]) == 1
        captured = capsys.readouterr()
        assert "t[new]" in captured.err
        assert "--update" in captured.err
        assert "NO-FLOOR" in captured.out


class TestMalformedFiles:
    def test_baseline_without_floor_table_is_clean_error(self, gate, tmp_path, capsys):
        cur = _bench_json(tmp_path / "cur.json", {"t[a]": 1000.0})
        base = tmp_path / "base.json"
        base.write_text(json.dumps({"wrong_key": {}}))
        assert gate.main([cur, str(base)]) == 2
        err = capsys.readouterr().err
        assert "refs_per_sec" in err and "--update" in err

    def test_non_numeric_floor_is_clean_error(self, gate, tmp_path, capsys):
        cur = _bench_json(tmp_path / "cur.json", {"t[a]": 1000.0})
        base = _baseline_json(tmp_path / "base.json", {"t[a]": "fast"})
        assert gate.main([cur, str(base)]) == 2
        assert "non-numeric" in capsys.readouterr().err

    def test_unreadable_files_are_clean_errors(self, gate, tmp_path, capsys):
        cur = _bench_json(tmp_path / "cur.json", {"t[a]": 1000.0})
        assert gate.main([cur, str(tmp_path / "missing.json")]) == 2
        assert "cannot read" in capsys.readouterr().err
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        base = _baseline_json(tmp_path / "base.json", {"t[a]": 1000})
        assert gate.main([str(bad), base]) == 2
        assert "cannot read" in capsys.readouterr().err

    def test_current_without_rates_is_clean_error(self, gate, tmp_path, capsys):
        cur = tmp_path / "cur.json"
        cur.write_text(json.dumps({"benchmarks": []}))
        base = _baseline_json(tmp_path / "base.json", {"t[a]": 1000})
        assert gate.main([str(cur), base]) == 2
        assert "no refs_per_sec" in capsys.readouterr().err


class TestUpdate:
    def test_update_writes_floors_with_headroom(self, gate, tmp_path):
        cur = _bench_json(tmp_path / "cur.json", {"t[a]": 5000.0})
        base = tmp_path / "base.json"
        assert gate.main([cur, str(base), "--update", "--headroom", "5"]) == 0
        doc = json.loads(base.read_text())
        assert doc["refs_per_sec"] == {"t[a]": 1000}
        # the refreshed baseline must gate cleanly against the same run
        assert gate.main([cur, str(base)]) == 0
