"""Tests common to all eight synthetic benchmark generators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError, UnknownBenchmarkError
from repro.trace.record import TraceSpec
from repro.trace.synthetic import (
    BENCHMARK_NAMES,
    BENCHMARKS,
    generate_trace,
    get_benchmark,
)

SMALL = dict(refs=30_000, seed=2)


@pytest.fixture(scope="module")
def traces():
    return {
        name: generate_trace(TraceSpec(name, **SMALL)) for name in BENCHMARK_NAMES
    }


class TestRegistry:
    def test_all_eight_present(self):
        assert set(BENCHMARK_NAMES) == {
            "barnes",
            "cholesky",
            "fft",
            "fmm",
            "lu",
            "ocean",
            "radix",
            "raytrace",
        }

    def test_get_benchmark_case_insensitive(self):
        assert get_benchmark("RADIX").name == "radix"

    def test_unknown_benchmark(self):
        with pytest.raises(UnknownBenchmarkError):
            get_benchmark("linpack")

    def test_wrong_spec_rejected(self):
        with pytest.raises(TraceError):
            BENCHMARKS["lu"]().generate(TraceSpec("fft"))


class TestGeneratedTraces:
    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_length_near_request(self, traces, name):
        t = traces[name]
        assert 0.4 * SMALL["refs"] <= len(t) <= 2.0 * SMALL["refs"]

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_pids_cover_all_processors(self, traces, name):
        assert set(np.unique(traces[name].pids)) == set(range(32))

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_placement_covers_every_page(self, traces, name):
        t = traces[name]
        pages = set(np.unique(t.addrs >> 12).tolist())
        assert t.placement is not None
        missing = pages - set(t.placement)
        assert not missing, f"{len(missing)} pages without a home"

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_homes_are_valid_nodes(self, traces, name):
        assert set(traces[name].placement.values()) <= set(range(8))

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_deterministic_for_seed(self, name):
        a = generate_trace(TraceSpec(name, refs=5_000, seed=9))
        b = generate_trace(TraceSpec(name, refs=5_000, seed=9))
        np.testing.assert_array_equal(a.addrs, b.addrs)
        np.testing.assert_array_equal(a.pids, b.pids)
        np.testing.assert_array_equal(a.writes, b.writes)

    # fft/lu/ocean are fully regular codes: their access sequences are
    # deliberately seed-independent (the paper's "regular access pattern"
    # class has no randomness to seed)
    @pytest.mark.parametrize(
        "name", [n for n in BENCHMARK_NAMES if n not in ("fft", "lu", "ocean")]
    )
    def test_seed_changes_trace(self, name):
        a = generate_trace(TraceSpec(name, refs=5_000, seed=1))
        b = generate_trace(TraceSpec(name, refs=5_000, seed=2))
        assert not (
            len(a) == len(b) and bool(np.all(a.addrs == b.addrs))
        ), f"{name} ignored the seed"

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_dataset_scales(self, name):
        gen = BENCHMARKS[name]()
        small = gen.dataset_bytes(0.125)
        big = gen.dataset_bytes(1.0)
        assert big >= small
        # at full scale the dataset matches Table 3 within rounding
        assert big == pytest.approx(gen.paper_mb * (1 << 20), rel=0.01)

    @pytest.mark.parametrize("name", BENCHMARK_NAMES)
    def test_meta_records_paper_identity(self, traces, name):
        t = traces[name]
        assert t.meta["paper_params"] == BENCHMARKS[name]().paper_params
        assert t.meta["paper_mb"] == BENCHMARKS[name]().paper_mb
