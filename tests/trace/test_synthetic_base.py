"""Tests for the synthetic-benchmark base-class machinery."""

from __future__ import annotations

import numpy as np

from repro.trace.record import TraceSpec
from repro.trace.regions import PAGE, Layout
from repro.trace.synthetic.base import MB, SyntheticBenchmark
from repro.trace.synthetic.radix import cumcount


class TestHelpers:
    def test_per_proc_budget(self):
        spec = TraceSpec("lu", refs=3200, n_procs=32)
        assert SyntheticBenchmark.per_proc_budget(spec) == 100

    def test_budget_floor(self):
        spec = TraceSpec("lu", refs=1, n_procs=32)
        assert SyntheticBenchmark.per_proc_budget(spec) == 1

    def test_alloc_partitionable_floors_size(self):
        lay = Layout()
        region = SyntheticBenchmark.alloc_partitionable(lay, "r", 100, 32)
        assert region.n_pages >= 32
        region.partition(32)  # must not raise

    def test_writes_like(self):
        addrs = np.array([4, 8], dtype=np.int64)
        a, w = SyntheticBenchmark.writes_like(addrs, True)
        assert w.tolist() == [1, 1]
        _, w = SyntheticBenchmark.writes_like(addrs, False)
        assert w.tolist() == [0, 0]

    def test_scaled(self):
        assert SyntheticBenchmark.scaled(10 * MB, 0.125) == int(1.25 * MB)
        assert SyntheticBenchmark.scaled(100, 0.01) == PAGE  # the floor

    def test_seed_material_differs_by_name(self):
        class A(SyntheticBenchmark):
            name = "aaa"

            def _build(self, spec, rng, layout):  # pragma: no cover
                raise NotImplementedError

        class B(A):
            name = "bbb"

        assert A()._seed_material(1) != B()._seed_material(1)
        assert A()._seed_material(1) == A()._seed_material(1)
        assert A()._seed_material(1) != A()._seed_material(2)


class TestCumcount:
    def test_docstring_example(self):
        vals = np.array([3, 5, 3, 3, 5])
        assert cumcount(vals).tolist() == [0, 0, 1, 2, 1]

    def test_all_equal(self):
        assert cumcount(np.array([7, 7, 7])).tolist() == [0, 1, 2]

    def test_all_distinct(self):
        assert cumcount(np.array([4, 2, 9])).tolist() == [0, 0, 0]

    def test_empty(self):
        assert cumcount(np.array([], dtype=np.int64)).tolist() == []

    def test_matches_naive_reference(self):
        rng = np.random.default_rng(5)
        vals = rng.integers(0, 10, size=500)
        seen: dict = {}
        expected = []
        for v in vals.tolist():
            expected.append(seen.get(v, 0))
            seen[v] = seen.get(v, 0) + 1
        assert cumcount(vals).tolist() == expected
