"""Per-benchmark characterisation: each generator must land in the class
the paper assigns it (spatial locality, access regularity, read/write mix,
remote-working-set shape).  These assertions pin the substitution argument
of DESIGN.md."""

from __future__ import annotations

import pytest

from repro.trace.record import TraceSpec
from repro.trace.stats import characterize
from repro.trace.synthetic import generate_trace


@pytest.fixture(scope="module")
def chars():
    out = {}
    for name in ("barnes", "cholesky", "fft", "fmm", "lu", "ocean", "radix", "raytrace"):
        t = generate_trace(TraceSpec(name, refs=200_000, seed=4))
        out[name] = characterize(t)
    return out


class TestSpatialLocality:
    """Page utilisation separates the paper's two application classes."""

    @pytest.mark.parametrize("name,floor", [("lu", 0.5), ("ocean", 0.5),
                                            ("fft", 0.4), ("cholesky", 0.4)])
    def test_regular_apps_fill_their_pages(self, chars, name, floor):
        assert chars[name].page_utilization > floor, (
            f"{name} should have high spatial locality"
        )

    @pytest.mark.parametrize("name", ["fmm", "raytrace", "radix"])
    def test_irregular_apps_leave_pages_sparse(self, chars, name):
        assert chars[name].page_utilization < 0.35, (
            f"{name} should have low spatial locality"
        )

    def test_nbody_reads_are_subblock(self, chars):
        # tree cells are 2-word touches of 16-word blocks
        assert chars["barnes"].block_utilization < 0.6
        assert chars["fmm"].block_utilization < 0.6

    def test_ordering_regular_above_irregular(self, chars):
        regular = min(chars[n].page_utilization for n in ("lu", "ocean"))
        irregular = max(chars[n].page_utilization for n in ("fmm", "raytrace"))
        assert regular > irregular


class TestWriteMix:
    def test_radix_is_write_heavy(self, chars):
        assert chars["radix"].write_fraction > 0.30

    def test_raytrace_is_read_dominated(self, chars):
        assert chars["raytrace"].write_fraction < 0.15

    @pytest.mark.parametrize("name", ["barnes", "fmm"])
    def test_nbody_writes_moderate(self, chars, name):
        assert 0.02 < chars[name].write_fraction < 0.45


class TestRemoteness:
    """First-touch placement keeps owned data local; shared data remote."""

    def test_lu_mostly_local_with_remote_pivot(self, chars):
        assert 0.1 < chars["lu"].remote_fraction < 0.8

    def test_raytrace_scene_is_mostly_remote(self, chars):
        # 7/8 of round-robin scene pages are remote to any node
        assert chars["raytrace"].remote_fraction > 0.6

    @pytest.mark.parametrize("name", ["fft", "ocean"])
    def test_partitioned_apps_balance(self, chars, name):
        assert 0.05 < chars[name].remote_fraction < 0.9


class TestFootprintAndReuse:
    def test_raytrace_has_the_largest_footprint(self, chars):
        rt = chars["raytrace"].footprint_bytes
        assert all(
            rt >= c.footprint_bytes for n, c in chars.items() if n != "raytrace"
        )

    def test_lu_has_a_small_reused_working_set(self, chars):
        assert chars["lu"].block_reuse > chars["raytrace"].block_reuse

    @pytest.mark.parametrize("name", ["barnes", "fmm"])
    def test_nbody_temporal_reuse_exists(self, chars, name):
        assert chars[name].block_reuse > 1.5
