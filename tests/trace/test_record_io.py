"""Unit tests for trace containers and persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.io import load_trace, save_trace
from repro.trace.record import Trace, TraceSpec


def small_trace(**kw) -> Trace:
    defaults = dict(
        name="t",
        pids=np.array([0, 1, 2, 3], dtype=np.int32),
        addrs=np.array([0, 64, 4096, 8192], dtype=np.int64),
        writes=np.array([0, 1, 0, 1], dtype=np.uint8),
        dataset_bytes=16384,
        placement={0: 0, 1: 1, 2: 0},
        meta={"k": "v"},
    )
    defaults.update(kw)
    return Trace(**defaults)


class TestTraceSpec:
    def test_defaults(self):
        spec = TraceSpec("radix")
        assert spec.refs == 400_000 and spec.n_procs == 32

    @pytest.mark.parametrize("kw", [{"refs": 0}, {"n_procs": 0}, {"scale": 0.0}, {"scale": 9.0}])
    def test_invalid(self, kw):
        with pytest.raises(TraceError):
            TraceSpec("radix", **kw)


class TestTrace:
    def test_len_and_iter(self):
        t = small_trace()
        assert len(t) == 4
        assert list(t) == [(0, 0, 0), (1, 64, 1), (2, 4096, 0), (3, 8192, 1)]

    def test_write_fraction(self):
        assert small_trace().write_fraction == pytest.approx(0.5)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(TraceError):
            small_trace(pids=np.array([0], dtype=np.int32))

    def test_slice(self):
        s = small_trace().slice(1, 3)
        assert len(s) == 2 and s.addrs[0] == 64

    def test_validate_pid_range(self):
        with pytest.raises(TraceError):
            small_trace().validate(n_procs=2)

    def test_validate_address_limit(self):
        with pytest.raises(TraceError):
            small_trace().validate(n_procs=4, address_limit=4096)

    def test_validate_ok(self):
        small_trace().validate(n_procs=4)

    def test_empty_trace_invalid(self):
        t = small_trace(
            pids=np.array([], dtype=np.int32),
            addrs=np.array([], dtype=np.int64),
            writes=np.array([], dtype=np.uint8),
        )
        with pytest.raises(TraceError):
            t.validate(n_procs=4)


class TestDtypeNormalisation:
    """Reference arrays are normalised once at construction, so both
    engines index them directly — no silent per-run conversion."""

    def test_canonical_dtypes_and_layout(self):
        t = small_trace()
        assert t.pids.dtype == np.int32 and t.pids.flags["C_CONTIGUOUS"]
        assert t.addrs.dtype == np.int64 and t.addrs.flags["C_CONTIGUOUS"]
        assert t.writes.dtype == np.uint8 and t.writes.flags["C_CONTIGUOUS"]

    def test_mismatched_dtypes_converted(self):
        t = small_trace(
            pids=np.array([0, 1, 2, 3], dtype=np.int64),
            addrs=np.array([0, 64, 4096, 8192], dtype=np.uint32),
            writes=np.array([0, 1, 0, 1], dtype=np.bool_),
        )
        assert t.pids.dtype == np.int32
        assert t.addrs.dtype == np.int64
        assert t.writes.dtype == np.uint8
        assert list(t) == [(0, 0, 0), (1, 64, 1), (2, 4096, 0), (3, 8192, 1)]

    def test_python_lists_accepted(self):
        t = small_trace(pids=[0, 1, 2, 3], addrs=[0, 64, 128, 192],
                        writes=[0, 0, 1, 1])
        assert t.pids.dtype == np.int32 and len(t) == 4

    def test_strided_view_compacted(self):
        base = np.arange(8, dtype=np.int32)
        t = small_trace(
            pids=base[::2],
            addrs=np.arange(8, dtype=np.int64)[::2] * 64,
            writes=np.zeros(8, dtype=np.uint8)[::2],
        )
        assert t.pids.flags["C_CONTIGUOUS"]
        assert t.pids.tolist() == [0, 2, 4, 6]

    def test_byteswapped_input_normalised(self):
        swapped = np.array([0, 1, 2, 3], dtype=np.dtype(np.int32).newbyteorder())
        t = small_trace(pids=swapped)
        assert t.pids.dtype == np.int32
        assert t.pids.dtype.isnative

    def test_multidimensional_rejected(self):
        with pytest.raises(TraceError, match="one-dimensional"):
            small_trace(pids=np.zeros((4, 1), dtype=np.int32))

    def test_conforming_input_not_copied(self):
        pids = np.array([0, 1, 2, 3], dtype=np.int32)
        t = small_trace(pids=pids)
        assert t.pids is pids or np.shares_memory(t.pids, pids)

    def test_loaded_trace_already_canonical(self, tmp_path):
        # a cached trace that deserialises with a mismatched dtype used to
        # cost run() a silent copy per run; now load normalises once
        t = small_trace()
        path = tmp_path / "t.npz"
        save_trace(t, path)
        loaded = load_trace(path)
        assert loaded.pids.dtype == np.int32
        assert loaded.addrs.flags["C_CONTIGUOUS"]
        assert loaded.writes.dtype == np.uint8


class TestIO:
    def test_round_trip(self, tmp_path):
        t = small_trace()
        path = tmp_path / "t.npz"
        save_trace(t, path)
        t2 = load_trace(path)
        assert t2.name == t.name
        assert t2.dataset_bytes == t.dataset_bytes
        assert t2.placement == t.placement
        assert t2.meta["k"] == "v"
        np.testing.assert_array_equal(t2.pids, t.pids)
        np.testing.assert_array_equal(t2.addrs, t.addrs)
        np.testing.assert_array_equal(t2.writes, t.writes)

    def test_no_placement_round_trip(self, tmp_path):
        t = small_trace(placement=None)
        path = tmp_path / "t.npz"
        save_trace(t, path)
        assert load_trace(path).placement is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.npz")

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(TraceError):
            load_trace(path)
