"""Unit tests for trace containers and persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.io import load_trace, save_trace
from repro.trace.record import Trace, TraceSpec


def small_trace(**kw) -> Trace:
    defaults = dict(
        name="t",
        pids=np.array([0, 1, 2, 3], dtype=np.int32),
        addrs=np.array([0, 64, 4096, 8192], dtype=np.int64),
        writes=np.array([0, 1, 0, 1], dtype=np.uint8),
        dataset_bytes=16384,
        placement={0: 0, 1: 1, 2: 0},
        meta={"k": "v"},
    )
    defaults.update(kw)
    return Trace(**defaults)


class TestTraceSpec:
    def test_defaults(self):
        spec = TraceSpec("radix")
        assert spec.refs == 400_000 and spec.n_procs == 32

    @pytest.mark.parametrize("kw", [{"refs": 0}, {"n_procs": 0}, {"scale": 0.0}, {"scale": 9.0}])
    def test_invalid(self, kw):
        with pytest.raises(TraceError):
            TraceSpec("radix", **kw)


class TestTrace:
    def test_len_and_iter(self):
        t = small_trace()
        assert len(t) == 4
        assert list(t) == [(0, 0, 0), (1, 64, 1), (2, 4096, 0), (3, 8192, 1)]

    def test_write_fraction(self):
        assert small_trace().write_fraction == pytest.approx(0.5)

    def test_mismatched_arrays_rejected(self):
        with pytest.raises(TraceError):
            small_trace(pids=np.array([0], dtype=np.int32))

    def test_slice(self):
        s = small_trace().slice(1, 3)
        assert len(s) == 2 and s.addrs[0] == 64

    def test_validate_pid_range(self):
        with pytest.raises(TraceError):
            small_trace().validate(n_procs=2)

    def test_validate_address_limit(self):
        with pytest.raises(TraceError):
            small_trace().validate(n_procs=4, address_limit=4096)

    def test_validate_ok(self):
        small_trace().validate(n_procs=4)

    def test_empty_trace_invalid(self):
        t = small_trace(
            pids=np.array([], dtype=np.int32),
            addrs=np.array([], dtype=np.int64),
            writes=np.array([], dtype=np.uint8),
        )
        with pytest.raises(TraceError):
            t.validate(n_procs=4)


class TestIO:
    def test_round_trip(self, tmp_path):
        t = small_trace()
        path = tmp_path / "t.npz"
        save_trace(t, path)
        t2 = load_trace(path)
        assert t2.name == t.name
        assert t2.dataset_bytes == t.dataset_bytes
        assert t2.placement == t.placement
        assert t2.meta["k"] == "v"
        np.testing.assert_array_equal(t2.pids, t.pids)
        np.testing.assert_array_equal(t2.addrs, t.addrs)
        np.testing.assert_array_equal(t2.writes, t.writes)

    def test_no_placement_round_trip(self, tmp_path):
        t = small_trace(placement=None)
        path = tmp_path / "t.npz"
        save_trace(t, path)
        assert load_trace(path).placement is None

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError):
            load_trace(tmp_path / "nope.npz")

    def test_malformed_file(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez(path, junk=np.zeros(3))
        with pytest.raises(TraceError):
            load_trace(path)
