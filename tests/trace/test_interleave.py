"""Unit tests for stream merging and round-robin interleaving."""

from __future__ import annotations

import numpy as np

from repro.trace.interleave import interleave_blocks, merge_streams, round_robin


def stream(addrs, write=0):
    a = np.asarray(addrs, dtype=np.int64)
    return a, np.full(len(a), write, dtype=np.uint8)


class TestMergeStreams:
    def test_preserves_internal_order(self):
        merged_a, merged_w = merge_streams([stream([1, 2, 3]), stream([10, 20], 1)])
        reads = [a for a, w in zip(merged_a, merged_w) if w == 0]
        writes = [a for a, w in zip(merged_a, merged_w) if w == 1]
        assert reads == [1, 2, 3]
        assert writes == [10, 20]

    def test_proportional_interleave(self):
        merged_a, _ = merge_streams([stream([1, 2, 3, 4]), stream([10, 20, 30, 40], 1)])
        # deterministic proportional merge alternates equal-length streams
        assert set(merged_a[:2].tolist()) == {1, 10}

    def test_empty_inputs(self):
        a, w = merge_streams([])
        assert len(a) == 0 and len(w) == 0
        a, w = merge_streams([stream([]), stream([5])])
        assert a.tolist() == [5]

    def test_random_merge_keeps_order(self):
        rng = np.random.default_rng(3)
        merged_a, merged_w = merge_streams(
            [stream(range(100)), stream(range(1000, 1100), 1)], rng=rng
        )
        reads = [a for a, w in zip(merged_a, merged_w) if w == 0]
        assert reads == list(range(100))


class TestRoundRobin:
    def test_equal_lengths_alternate(self):
        pids, addrs, writes = round_robin([stream([1, 2]), stream([10, 20], 1)])
        assert pids.tolist() == [0, 1, 0, 1]
        assert addrs.tolist() == [1, 10, 2, 20]
        assert writes.tolist() == [0, 1, 0, 1]

    def test_unequal_lengths_compact(self):
        pids, addrs, _ = round_robin([stream([1, 2, 3]), stream([10])])
        assert addrs.tolist() == [1, 10, 2, 3]
        assert pids.tolist() == [0, 1, 0, 0]

    def test_empty(self):
        pids, addrs, writes = round_robin([])
        assert len(pids) == len(addrs) == len(writes) == 0

    def test_per_proc_order_preserved(self):
        streams = [stream(np.arange(i, 50 + i)) for i in range(4)]
        pids, addrs, _ = round_robin(streams)
        for p in range(4):
            mine = addrs[pids == p]
            assert mine.tolist() == list(range(p, 50 + p))


class TestInterleaveBlocks:
    def test_concatenates_phases(self):
        p1 = round_robin([stream([1]), stream([2])])
        p2 = round_robin([stream([3]), stream([4])])
        pids, addrs, writes = interleave_blocks([p1, p2])
        assert addrs.tolist() == [1, 2, 3, 4]

    def test_empty(self):
        pids, addrs, writes = interleave_blocks([])
        assert len(pids) == 0
