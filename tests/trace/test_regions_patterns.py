"""Unit tests for the address-space layout and pattern primitives."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.patterns import (
    block_runs,
    sequential_words,
    uniform_words,
    zipf_ranks,
)
from repro.trace.regions import (
    PAGE,
    Layout,
    Region,
    place_partitions,
    place_round_robin,
)


class TestRegion:
    def test_basic_properties(self):
        r = Region("a", 4096, 8192)
        assert r.end == 12288
        assert r.n_words == 2048
        assert r.n_pages == 2
        assert r.first_page == 1
        assert list(r.pages()) == [1, 2]

    def test_word_addr(self):
        r = Region("a", 4096, 8192)
        assert r.word_addr(0) == 4096
        assert r.word_addr(1) == 4100
        with pytest.raises(TraceError):
            r.word_addr(2048)

    def test_unaligned_rejected(self):
        with pytest.raises(TraceError):
            Region("a", 100, 4096)

    def test_partition_near_equal(self):
        r = Region("a", 0, 10 * PAGE)
        parts = r.partition(3)
        assert [p.n_pages for p in parts] == [4, 3, 3]
        assert parts[0].start == 0
        assert parts[-1].end == r.end

    def test_partition_too_many(self):
        with pytest.raises(TraceError):
            Region("a", 0, 2 * PAGE).partition(3)


class TestLayout:
    def test_sequential_page_aligned(self):
        lay = Layout()
        a = lay.alloc("a", 100)
        b = lay.alloc("b", 5000)
        assert a.size == PAGE
        assert b.start == PAGE
        assert lay.total_bytes == PAGE + 2 * PAGE
        assert lay["a"] is a

    def test_duplicate_name(self):
        lay = Layout()
        lay.alloc("a", 100)
        with pytest.raises(TraceError):
            lay.alloc("a", 100)


class TestPlacement:
    def test_place_partitions(self):
        parts = Region("a", 0, 8 * PAGE).partition(4)
        placement = place_partitions(parts, procs_per_node=2)
        assert placement[0] == 0  # proc 0 -> node 0
        assert placement[parts[3].first_page] == 1  # proc 3 -> node 1

    def test_place_round_robin(self):
        r = Region("a", 0, 6 * PAGE)
        placement = place_round_robin(r, n_nodes=4)
        assert [placement[p] for p in r.pages()] == [0, 1, 2, 3, 0, 1]


class TestPatterns:
    def test_sequential_words(self):
        r = Region("a", 4096, 4096)
        a = sequential_words(r, 0, 4, stride=2)
        np.testing.assert_array_equal(a, [4096, 4104, 4112, 4120])

    def test_sequential_wraps(self):
        r = Region("a", 0, 4096)
        a = sequential_words(r, 1023, 2, stride=1)
        np.testing.assert_array_equal(a, [1023 * 4, 0])

    def test_sequential_invalid(self):
        r = Region("a", 0, 4096)
        with pytest.raises(TraceError):
            sequential_words(r, 0, -1)
        with pytest.raises(TraceError):
            sequential_words(r, 0, 4, stride=0)

    def test_block_runs(self):
        r = Region("a", 0, 4096)
        a = block_runs(r, np.array([0, 100]), run_words=2)
        np.testing.assert_array_equal(a, [0, 4, 400, 404])

    def test_zipf_ranks_bounded_and_skewed(self):
        rng = np.random.default_rng(1)
        ranks = zipf_ranks(rng, n_items=100, n_samples=5000, alpha=1.0)
        assert ranks.min() >= 0 and ranks.max() < 100
        # rank 0 must dominate rank 50 under a strong skew
        assert np.sum(ranks == 0) > 5 * np.sum(ranks == 50)

    def test_zipf_alpha_zero_uniformish(self):
        rng = np.random.default_rng(1)
        ranks = zipf_ranks(rng, 10, 10_000, alpha=0.0)
        counts = np.bincount(ranks, minlength=10)
        assert counts.min() > 800  # roughly uniform

    def test_zipf_invalid(self):
        rng = np.random.default_rng(1)
        with pytest.raises(TraceError):
            zipf_ranks(rng, 0, 10, 1.0)
        with pytest.raises(TraceError):
            zipf_ranks(rng, 10, 10, -1.0)

    def test_uniform_words_in_region(self):
        rng = np.random.default_rng(1)
        r = Region("a", 4096, 4096)
        a = uniform_words(rng, r, 1000)
        assert a.min() >= r.start and a.max() < r.end
