"""Scripted scenarios for page-cache eviction (LRM) and the vxp pathway.

These exercise the costliest corner of the protocol: a page leaving the
PC must be purged from the whole cluster, its dirty blocks written home,
and later references must miss remotely again (the re-mapping cost the
paper charges to relocation churn).
"""

from __future__ import annotations

import pytest

from repro.coherence.states import PCBlockState
from repro.params import RelocationCounters
from tests.conftest import Harness, addr, tiny_config


def tiny_pc_harness(system: str = "p5", frames: int = 2, **kw) -> Harness:
    """A harness whose page caches hold only ``frames`` pages."""
    cfg = tiny_config(system, **kw)
    # dataset size chosen so fraction-based sizing yields `frames` frames
    dataset = frames * 4096 * 5
    return Harness(cfg, dataset_bytes=dataset)


def force_relocation(h: Harness, page: int, home: int = 1, pid: int = 0) -> None:
    """Capacity-miss page `page` until it lands in pid's node's PC."""
    h.home(page, home)
    h.home(8, 0)
    h.home(9, 0)
    node = pid // h.config.procs_per_node
    pc = h.machine.nodes[node].pc
    for _ in range(60):
        if page in pc:
            return
        for off in (0, 16):
            h.read(pid, addr(page, off))
            h.read(pid, addr(8, off))
            h.read(pid, addr(9, off))
            h.read(pid, addr(8, (off + 32) % 64))
            h.read(pid, addr(9, (off + 32) % 64))
    raise AssertionError(f"page {page} never relocated")


class TestLRMEviction:
    def test_capacity_respected(self):
        h = tiny_pc_harness(frames=2)
        for page in (0, 1, 2):
            force_relocation(h, page)
        pc = h.machine.nodes[0].pc
        assert len(pc) <= 2
        assert h.counters.pc_evictions >= 1

    def test_evicted_page_purged_from_l1s(self):
        h = tiny_pc_harness(frames=1)
        force_relocation(h, 0)
        h.read(0, addr(0, 0))  # cache a block of the resident page
        assert h.l1_state(0, addr(0, 0)) is not None
        force_relocation(h, 1)  # evicts page 0
        assert 0 not in h.machine.nodes[0].pc
        assert h.l1_state(0, addr(0, 0)) is None  # re-mapping flushed it

    def test_dirty_blocks_written_home_on_eviction(self):
        h = tiny_pc_harness(frames=1)
        force_relocation(h, 0)
        h.write(0, addr(0, 5))
        # park the dirty data in the PC frame by evicting the L1 copy
        for off in (5,):
            h.read(0, addr(8, off))
            h.read(0, addr(9, off))
        assert h.pc_state(0, addr(0, 5)) == PCBlockState.DIRTY
        before = h.counters.pc_flush_writebacks
        force_relocation(h, 1)
        assert h.counters.pc_flush_writebacks == before + 1
        # the directory must agree the data went home
        assert h.machine.directory.owner(addr(0, 5) >> 6) is None

    def test_dirty_l1_copy_of_evicted_page_flushes(self):
        h = tiny_pc_harness(frames=1)
        force_relocation(h, 0)
        h.write(0, addr(0, 7))  # dirty in L1, INVALID in PC
        before = h.counters.pc_flush_writebacks
        force_relocation(h, 1)
        assert h.counters.pc_flush_writebacks == before + 1
        assert h.l1_state(0, addr(0, 7)) is None

    def test_reference_after_eviction_misses_remotely(self):
        h = tiny_pc_harness(frames=1)
        force_relocation(h, 0)
        force_relocation(h, 1)
        remote_before = h.counters.read_remote
        h.read(0, addr(0, 50))  # a block never cached: must go remote
        assert h.counters.read_remote == remote_before + 1

    def test_lrm_picks_stalest_page(self):
        h = tiny_pc_harness(frames=2)
        force_relocation(h, 0)
        force_relocation(h, 1)
        # page 1 misses again (fresher), page 0 goes stale
        h.machine.nodes[0].pc.record_hit(1, now=10**9)
        force_relocation(h, 2)
        pc = h.machine.nodes[0].pc
        assert 1 in pc and 2 in pc and 0 not in pc


class TestVxpPathway:
    def test_victimizations_drive_relocation(self):
        h = tiny_pc_harness("vxp5", frames=4)
        h.home(0, 1)
        h.home(8, 0)
        h.home(9, 0)
        pc = h.machine.nodes[0].pc
        for _ in range(60):
            if 0 in pc:
                break
            for off in (0, 16, 32):
                h.read(0, addr(0, off))
                h.read(0, addr(8, off))
                h.read(0, addr(9, off))
                h.read(0, addr(8, (off + 8) % 64))
                h.read(0, addr(9, (off + 8) % 64))
        assert 0 in pc, "NC-set victimisation counters never relocated page 0"
        assert h.counters.pc_relocations >= 1

    def test_counter_resets_after_trigger(self):
        h = tiny_pc_harness("vxp5", frames=4)
        h.home(0, 1)
        h.home(8, 0)
        h.home(9, 0)
        pc = h.machine.nodes[0].pc
        for _ in range(60):
            if 0 in pc:
                break
            for off in (0, 16, 32):
                h.read(0, addr(0, off))
                h.read(0, addr(8, off))
                h.read(0, addr(9, off))
                h.read(0, addr(8, (off + 8) % 64))
                h.read(0, addr(9, (off + 8) % 64))
        node = h.machine.nodes[0]
        assert node.nc_counters is not None
        # counters reset when they fire, so none can run far past threshold
        for s_idx in range(node.nc_counters.n_sets):
            assert node.nc_counters.count(s_idx) <= node.threshold.value + 1


class TestConfigGuards:
    def test_vxp_requires_victim_nc(self):
        from repro.errors import ConfigurationError
        from repro.params import NCConfig, NCKind, PCConfig, SystemConfig

        with pytest.raises(ConfigurationError):
            SystemConfig(
                nc=NCConfig(kind=NCKind.NONE),
                pc=PCConfig(
                    enabled=True, fraction=0.2,
                    counters=RelocationCounters.NC_SET,
                ),
            )
