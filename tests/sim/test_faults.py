"""Tests for the deterministic fault-injection harness and the recovery
paths it exercises: trace-cache integrity (digest, quarantine,
regenerate), per-cell retries, worker-loss redispatch, and wall-clock
timeouts."""

from __future__ import annotations

import errno

import pytest

from repro import faults
from repro.errors import (
    ConfigurationError,
    CorruptTraceError,
    InjectedFaultError,
    RetryExhaustedError,
)
from repro.faults import FaultPlan, cell_context
from repro.sim.parallel import RecoveryLog
from repro.sim.runner import clear_trace_cache, sweep
from repro.trace import io as trace_io
from repro.trace.record import TraceSpec
from repro.trace.synthetic import generate_trace

SYSTEMS = ["base", "vb"]
BENCHES = ["fft", "lu"]
REFS = 3_000
SCALE = 0.02


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    """Each test gets its own disk trace cache and a clean fault state."""
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
    for var in ("REPRO_FAULTS", "REPRO_MAX_RETRIES", "REPRO_CELL_TIMEOUT"):
        monkeypatch.delenv(var, raising=False)
    clear_trace_cache()
    faults._cached_env = None
    faults._cached_plan = None
    yield
    clear_trace_cache()
    faults._cached_env = None
    faults._cached_plan = None


# ---------------------------------------------------------------------------
# FaultPlan grammar and decisions
# ---------------------------------------------------------------------------


class TestFaultPlanGrammar:
    def test_parse_full_grammar(self):
        plan = FaultPlan.parse("seed=7;cell=0.5@2;slow=0.25:1.5;io=1")
        assert plan.seed == 7
        assert plan.rates == {"cell": 0.5, "slow": 0.25, "io": 1.0}
        assert plan.attempts == {"cell": 2}
        assert plan.slow_s == 1.5

    def test_comma_separator_equivalent(self):
        a = FaultPlan.parse("seed=3;kill=0.5@1")
        b = FaultPlan.parse("seed=3,kill=0.5@1")
        assert a.spec() == b.spec()

    def test_spec_round_trips(self):
        plan = FaultPlan.parse("seed=9;cell=0.4@3;corrupt=1;slow=0.2:0.7")
        assert FaultPlan.parse(plan.spec()).spec() == plan.spec()

    @pytest.mark.parametrize(
        "bad",
        [
            "bogus=1",  # unknown kind
            "cell=1.5",  # rate out of range
            "cell=0.5:2.0",  # :seconds on a non-slow kind
            "cell=0.5@0",  # attempts below 1
            "justtext",  # no key=value shape
            "cell=notafloat",
            "slow=0.5:-1",  # non-positive duration
        ],
    )
    def test_bad_grammar_raises(self, bad):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse(bad)

    def test_decisions_deterministic_across_instances(self):
        contexts = [cell_context(s, b, 1) for s in SYSTEMS for b in BENCHES]
        a = FaultPlan.parse("seed=11;cell=0.5")
        b = FaultPlan.parse("seed=11;cell=0.5")
        assert [a.should("cell", c, 0) for c in contexts] == [
            b.should("cell", c, 0) for c in contexts
        ]

    def test_rate_one_always_fires_rate_zero_never(self):
        plan = FaultPlan(seed=1, rates={"cell": 1.0})
        assert plan.should("cell", "x", 0)
        assert not plan.should("kill", "x", 0)  # no rate configured

    def test_attempt_gating(self):
        plan = FaultPlan(seed=1, rates={"cell": 1.0}, attempts={"cell": 2})
        assert plan.should("cell", "ctx", 0)
        assert plan.should("cell", "ctx", 1)
        assert not plan.should("cell", "ctx", 2)

    def test_io_fires_once_per_context_per_process(self):
        plan = FaultPlan(seed=1, rates={"io": 1.0})
        assert plan.should("io", "store:k", 0)
        assert not plan.should("io", "store:k", 0)  # tally exhausted
        assert plan.should("io", "store:other", 0)

    def test_maybe_fail_cell_raises_injected_fault(self):
        plan = FaultPlan(seed=1, rates={"cell": 1.0})
        with pytest.raises(InjectedFaultError):
            plan.maybe_fail_cell("ctx", 0)

    def test_active_plan_tracks_env(self, monkeypatch):
        assert faults.active_plan() is None
        monkeypatch.setenv("REPRO_FAULTS", "seed=5;cell=1.0")
        plan = faults.active_plan()
        assert plan is not None and plan.seed == 5
        monkeypatch.delenv("REPRO_FAULTS")
        assert faults.active_plan() is None


class TestServiceFaultKinds:
    """The four service-layer kinds: reject, hang, disk-full, store-corrupt."""

    def test_parse_service_kinds(self):
        plan = FaultPlan.parse(
            "seed=4;reject=0.5;hang=0.25:2.5;disk-full=1;store-corrupt=0.1")
        assert plan.rates == {"reject": 0.5, "hang": 0.25,
                              "disk-full": 1.0, "store-corrupt": 0.1}
        assert plan.hang_s == 2.5

    def test_spec_round_trips_hang_seconds(self):
        plan = FaultPlan.parse("seed=4;hang=0.5:0.75;reject=1")
        assert FaultPlan.parse(plan.spec()).spec() == plan.spec()

    def test_seconds_suffix_only_for_timed_kinds(self):
        with pytest.raises(ConfigurationError):
            FaultPlan.parse("reject=0.5:2.0")

    def test_reject_fires_per_tally_bound(self):
        plan = FaultPlan(seed=1, rates={"reject": 1.0},
                         attempts={"reject": 2})
        ctx = "POST /jobs|{}"
        assert plan.should_reject(ctx)
        assert plan.should_reject(ctx)
        assert not plan.should_reject(ctx)  # tally exhausted

    def test_hang_delay_returns_seconds_then_none(self):
        plan = FaultPlan(seed=1, rates={"hang": 1.0}, hang_s=0.25)
        assert plan.hang_delay("GET /healthz|") == 0.25
        assert plan.hang_delay("GET /healthz|") is None  # once per context
        assert plan.hang_delay("GET /stats|") == 0.25

    def test_hang_delay_none_when_unconfigured(self):
        plan = FaultPlan(seed=1, rates={"reject": 1.0})
        assert plan.hang_delay("GET /healthz|") is None

    def test_disk_full_raises_enospc_once(self):
        plan = FaultPlan(seed=1, rates={"disk-full": 1.0})
        with pytest.raises(OSError) as excinfo:
            plan.maybe_disk_full("store-put/abc")
        assert excinfo.value.errno == errno.ENOSPC
        plan.maybe_disk_full("store-put/abc")  # tally exhausted: no raise

    def test_store_corrupt_mangles_entry_once(self, tmp_path):
        payload = b"x" * 4096
        path = tmp_path / "entry.json"
        path.write_bytes(payload)
        plan = FaultPlan(seed=1, rates={"store-corrupt": 1.0})
        assert plan.maybe_corrupt_store(path, "store-entry/abc")
        mangled = path.read_bytes()
        assert mangled != payload
        assert not plan.maybe_corrupt_store(path, "store-entry/abc")
        assert path.read_bytes() == mangled


# ---------------------------------------------------------------------------
# trace-cache integrity: digests, quarantine, regenerate
# ---------------------------------------------------------------------------


def _small_spec():
    return TraceSpec(benchmark="fft", refs=2_000, seed=1, scale=SCALE)


class TestTraceIntegrity:
    def test_bit_flip_detected_by_digest(self, tmp_path):
        trace = generate_trace(_small_spec())
        path = tmp_path / "t.npz"
        trace_io.save_trace(trace, path)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(CorruptTraceError):
            trace_io.load_trace(path)

    def test_truncation_detected(self, tmp_path):
        trace = generate_trace(_small_spec())
        path = tmp_path / "t.npz"
        trace_io.save_trace(trace, path)
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(CorruptTraceError):
            trace_io.load_trace(path)

    def test_atomic_save_leaves_no_temp_files(self, tmp_path):
        trace = generate_trace(_small_spec())
        trace_io.save_trace(trace, tmp_path / "t.npz")
        assert [p.name for p in tmp_path.iterdir()] == ["t.npz"]

    def test_corrupt_cache_entry_quarantined_and_regenerated(self):
        spec = _small_spec()
        trace = generate_trace(spec)
        trace_io.store_cached_trace(spec, trace)
        path = trace_io.trace_cache_path(spec)
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        path.write_bytes(bytes(data))

        notes = []
        previous = trace_io.set_recovery_hook(
            lambda kind, detail: notes.append(kind)
        )
        try:
            assert trace_io.load_cached_trace(spec) is None
        finally:
            trace_io.set_recovery_hook(previous)

        assert not path.exists()
        assert trace_io.quarantine_path(path).exists()
        assert "trace_quarantined" in notes

        # the caller regenerates and re-stores; the cache heals
        trace_io.store_cached_trace(spec, trace)
        restored = trace_io.load_cached_trace(spec)
        assert restored is not None and len(restored) == len(trace)


# ---------------------------------------------------------------------------
# sweep-level recovery (the integration paths ISSUE.md pins)
# ---------------------------------------------------------------------------


def _baseline():
    return sweep(SYSTEMS, BENCHES, refs=REFS, scale=SCALE, jobs=1)


def _assert_identical(expected, actual):
    assert list(expected) == list(actual)
    for key in expected:
        assert expected[key].counters == actual[key].counters, key


class TestSweepFaultRecovery:
    def test_transient_cell_fault_retried_parallel(self, monkeypatch):
        expected = _baseline()
        clear_trace_cache()
        monkeypatch.setenv("REPRO_FAULTS", "seed=7;cell=1.0@1")
        recovery = RecoveryLog()
        actual = sweep(
            SYSTEMS, BENCHES, refs=REFS, scale=SCALE, jobs=2, recovery=recovery
        )
        _assert_identical(expected, actual)
        assert recovery.counts.get("cell_retry", 0) >= len(expected)
        assert recovery.counts.get("cell_recovered", 0) >= len(expected)

    def test_transient_cell_fault_retried_serial(self, monkeypatch):
        expected = _baseline()
        clear_trace_cache()
        monkeypatch.setenv("REPRO_FAULTS", "seed=7;cell=1.0@1")
        recovery = RecoveryLog()
        actual = sweep(
            SYSTEMS, BENCHES, refs=REFS, scale=SCALE, jobs=1, recovery=recovery
        )
        _assert_identical(expected, actual)
        assert recovery.counts.get("cell_retry", 0) >= len(expected)

    def test_worker_kill_redispatched(self, monkeypatch):
        expected = _baseline()
        clear_trace_cache()
        monkeypatch.setenv("REPRO_FAULTS", "seed=3;kill=1.0@1")
        recovery = RecoveryLog()
        actual = sweep(
            SYSTEMS, BENCHES, refs=REFS, scale=SCALE, jobs=2, recovery=recovery
        )
        _assert_identical(expected, actual)
        assert recovery.counts.get("worker_lost", 0) >= 1
        assert recovery.counts.get("cell_redispatch", 0) >= 1

    def test_retry_exhaustion_raises_with_context(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=7;cell=1.0@5")
        monkeypatch.setenv("REPRO_MAX_RETRIES", "1")
        with pytest.raises(RetryExhaustedError) as excinfo:
            sweep(["base"], ["fft"], refs=REFS, scale=SCALE, jobs=1)
        message = str(excinfo.value)
        assert "base/fft" in message and "2 attempt(s)" in message

    def test_timeout_then_recover(self, monkeypatch):
        expected = _baseline()
        clear_trace_cache()
        # every cell sleeps 5s on its first attempt only; the 0.6s budget
        # kills it, the retry runs clean
        monkeypatch.setenv("REPRO_FAULTS", "seed=2;slow=1.0@1:5.0")
        recovery = RecoveryLog()
        actual = sweep(
            SYSTEMS,
            ["fft"],
            refs=REFS,
            scale=SCALE,
            jobs=2,
            cell_timeout=0.6,
            recovery=recovery,
        )
        for key in actual:
            assert expected[key].counters == actual[key].counters, key
        assert recovery.counts.get("cell_timeout", 0) >= 1
        assert recovery.counts.get("cell_recovered", 0) >= 1

    def test_timeout_exhaustion_raises(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=2;slow=1.0@9:5.0")
        with pytest.raises(RetryExhaustedError):
            sweep(
                SYSTEMS,
                ["fft"],
                refs=REFS,
                scale=SCALE,
                jobs=2,
                cell_timeout=0.4,
                max_retries=1,
            )

    def test_io_fault_degrades_cache_not_results(self, monkeypatch):
        expected = _baseline()
        clear_trace_cache()
        monkeypatch.setenv("REPRO_FAULTS", "seed=7;io=1.0")
        recovery = RecoveryLog()
        actual = sweep(
            SYSTEMS, BENCHES, refs=REFS, scale=SCALE, jobs=2, recovery=recovery
        )
        _assert_identical(expected, actual)
        assert recovery.counts.get("trace_cache_skipped", 0) >= 1

    def test_corrupted_cache_quarantined_on_next_run(self, monkeypatch):
        monkeypatch.setenv("REPRO_FAULTS", "seed=7;corrupt=1.0")
        rec1 = RecoveryLog()
        first = sweep(
            SYSTEMS, BENCHES, refs=REFS, scale=SCALE, jobs=2, recovery=rec1
        )
        assert rec1.counts.get("fault_injected", 0) >= 1

        # a fresh run over the same (corrupted) disk cache must quarantine
        # and regenerate, not crash and not return wrong numbers
        clear_trace_cache()
        faults._cached_env = None
        faults._cached_plan = None
        rec2 = RecoveryLog()
        second = sweep(
            SYSTEMS, BENCHES, refs=REFS, scale=SCALE, jobs=2, recovery=rec2
        )
        _assert_identical(first, second)
        assert rec2.counts.get("trace_quarantined", 0) >= 1
        cache_dir = trace_io.trace_cache_dir()
        assert any(p.suffix == ".corrupt" for p in cache_dir.iterdir())

    def test_kill_fault_never_fires_outside_workers(self, monkeypatch):
        # a serial sweep runs cells in this very process; kill=1.0 must
        # not take down the test runner
        monkeypatch.setenv("REPRO_FAULTS", "seed=3;kill=1.0@9")
        results = sweep(["base"], ["fft"], refs=REFS, scale=SCALE, jobs=1)
        assert ("base", "fft") in results

    def test_recovery_metrics_snapshot(self):
        recovery = RecoveryLog()
        recovery.note("cell_retry", "base", "fft", detail="x")
        recovery.note("cell_retry", "base", "lu", detail="y")
        snap = recovery.snapshot()
        assert snap["counters"]["sweep.cell_retry"] == 2
        assert len(recovery.summary()["actions"]) == 2
