"""Tests for the observability subsystem: event tracing, the metrics
registry, deterministic sweep aggregation, and run manifests.

The two load-bearing guarantees pinned here:

* attaching a tracer **never changes simulation results** (counters are
  bit-identical with and without one), and the traced event totals agree
  exactly with the engine's own counters;
* metrics and manifests are **deterministic**: a parallel sweep's
  aggregate equals the serial one, and two manifests of the same sweep
  agree bit-for-bit once volatile (timing/environment) fields are
  stripped.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.events import EVENT_KINDS, EventTracer
from repro.obs.manifest import (
    MANIFEST_ENV,
    build_manifest,
    config_digest,
    manifest_core,
    maybe_write_sweep_manifest,
    write_manifest,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    aggregate_metrics,
    merge_snapshots,
)
from repro.sim.parallel import sweep_metrics, timed_sweep
from repro.sim.runner import (
    clear_trace_cache,
    resolve_sweep_configs,
    simulate,
    sweep,
)

REFS = 8_000

SYSTEMS = ["base", "vb"]
BENCHES = ["lu", "radix"]


def traced_pair(system: str, benchmark: str, refs: int = REFS):
    """The same simulation twice: without and with a tracer attached."""
    plain = simulate(system, benchmark, refs=refs)
    tracer = EventTracer()
    traced = simulate(system, benchmark, refs=refs, tracer=tracer)
    return plain, traced, tracer


class TestTracerTransparency:
    """A tracer observes the run; it must never perturb it."""

    @pytest.mark.parametrize("system", ["base", "vb", "vxp5", "ncd"])
    def test_counters_identical_with_and_without_tracer(self, system):
        plain, traced, _ = traced_pair(system, "radix")
        assert plain.counters == traced.counters

    def test_trace_totals_match_engine_counters(self):
        """Every traced kind with a counter twin agrees exactly."""
        _, traced, tracer = traced_pair("vxp5", "radix")
        c = traced.counters
        k = tracer.kind_counts.get
        assert k("nc_hit", 0) == c.read_nc_hits + c.write_nc_hits
        assert k("nc_insert", 0) == c.nc_insertions
        assert k("nc_evict", 0) == c.nc_evictions
        assert k("pc_hit", 0) == c.read_pc_hits + c.write_pc_hits
        assert k("pc_relocate", 0) == c.pc_relocations
        assert k("pc_evict", 0) == c.pc_evictions
        assert k("writeback_remote", 0) == c.writebacks_remote
        assert k("writeback_absorbed", 0) == c.writebacks_absorbed
        assert k("invalidate", 0) == c.remote_invalidations
        assert k("upgrade", 0) == c.local_upgrades + c.remote_upgrades

    def test_dir_access_covers_remote_fetches(self):
        # peer-supplied local misses never reach the directory, so the
        # event count bounds the remote-fetch counters from above via the
        # local-miss path but must cover every remote access exactly
        _, traced, tracer = traced_pair("vb", "radix")
        c = traced.counters
        assert tracer.kind_counts.get("dir_access", 0) >= c.read_remote + c.write_remote

    def test_all_emitted_kinds_are_documented(self):
        _, _, tracer = traced_pair("vxp5", "radix")
        assert set(tracer.kind_counts) <= set(EVENT_KINDS)
        # a real run on an NC+PC system emits a rich mix, not one kind
        assert len(tracer.kind_counts) >= 5


class TestEventTracer:
    def test_ring_bounds_retention_but_not_totals(self):
        tracer = EventTracer(capacity=8)
        for i in range(20):
            tracer.emit("nc_hit", now=i, node=1, block=i)
        assert len(tracer) == 8
        assert tracer.total_emitted == 20
        # the ring keeps the newest events, seq keeps counting
        assert [e.seq for e in tracer.events()] == list(range(12, 20))
        assert tracer.kind_counts["nc_hit"] == 20

    def test_events_of_filters_by_kind(self):
        tracer = EventTracer()
        tracer.emit("nc_hit", now=1)
        tracer.emit("nc_evict", now=2, detail="dirty")
        hits = list(tracer.events_of("nc_hit"))
        assert len(hits) == 1 and hits[0].kind == "nc_hit"

    def test_jsonl_round_trip(self, tmp_path):
        tracer = EventTracer()
        tracer.emit("nc_insert", now=7, node=2, block=99, detail="clean")
        path = tmp_path / "events.jsonl"
        assert tracer.to_jsonl(str(path)) == 1
        rec = json.loads(path.read_text().strip())
        assert rec == {
            "seq": 0, "now": 7, "kind": "nc_insert",
            "node": 2, "block": 99, "detail": "clean",
        }

    def test_streaming_sink_writes_every_event(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        with EventTracer(capacity=4, jsonl_path=str(path)) as tracer:
            for i in range(10):
                tracer.emit("invalidate", now=i)
        # the ring truncated to 4, the stream kept all 10
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 10
        assert json.loads(lines[-1])["seq"] == 9

    def test_ring_overflow_keeps_newest_drops_oldest(self):
        tracer = EventTracer(capacity=3)
        for i in range(7):
            tracer.emit("nc_evict", now=i, block=i)
        events = tracer.events()
        assert len(tracer) == 3 and len(events) == 3
        assert [e.block for e in events] == [4, 5, 6]  # newest survive
        assert tracer.total_emitted == 7  # totals are never truncated
        assert tracer.kind_counts["nc_evict"] == 7

    def test_flush_every_must_be_positive(self):
        with pytest.raises(ValueError, match="positive"):
            EventTracer(flush_every=0)


class TestSinkDurability:
    """JSONL-sink behaviour when the writing process dies mid-run.

    Reuses the fault-injection harness's worker-kill mechanism
    (``FaultPlan`` + ``mark_worker_process``) so the death is the same
    ``os._exit`` a killed sweep worker suffers — no ``close()``, no
    interpreter shutdown, no buffer flush.
    """

    @staticmethod
    def _die_mid_write(path: str, flush_every):
        from repro import faults
        from repro.faults import FaultPlan

        faults.mark_worker_process()
        tracer = EventTracer(jsonl_path=path, flush_every=flush_every)
        for i in range(200):
            tracer.emit("invalidate", now=i, block=i)
        # kill=1.0 always selects; fires because this is a marked worker
        FaultPlan.parse("seed=1;kill=1.0").maybe_kill("sink-test", 0)
        raise AssertionError("kill fault did not fire")  # pragma: no cover

    def _run_and_kill(self, path, flush_every):
        import multiprocessing

        from repro.faults import KILL_EXIT_CODE

        ctx = multiprocessing.get_context("fork")
        proc = ctx.Process(
            target=self._die_mid_write, args=(str(path), flush_every)
        )
        proc.start()
        proc.join(timeout=30)
        assert proc.exitcode == KILL_EXIT_CODE

    def test_flushed_sink_survives_worker_kill_complete(self, tmp_path):
        path = tmp_path / "flushed.jsonl"
        self._run_and_kill(path, flush_every=1)
        lines = path.read_text().splitlines()
        assert len(lines) == 200  # every flushed event survived
        for i, line in enumerate(lines):
            rec = json.loads(line)  # every line is complete JSON
            assert rec["seq"] == i

    def test_batched_flush_loses_at_most_one_batch(self, tmp_path):
        path = tmp_path / "batched.jsonl"
        self._run_and_kill(path, flush_every=50)
        lines = path.read_text().splitlines()
        # 200 events at flush_every=50: all four batches were flushed
        assert len(lines) == 200
        assert all(json.loads(line) for line in lines)

    def test_unflushed_sink_loses_only_the_buffered_tail(self, tmp_path):
        # without flush_every the file may lose the buffered tail, but
        # whatever did reach disk must be a prefix of complete lines
        path = tmp_path / "unflushed.jsonl"
        self._run_and_kill(path, flush_every=None)
        text = path.read_text() if path.exists() else ""
        complete = text.splitlines()[: text.count("\n")]
        for i, line in enumerate(complete):
            assert json.loads(line)["seq"] == i


class TestMetricsRegistry:
    def test_snapshot_sections_and_sorting(self):
        reg = MetricsRegistry()
        reg.inc("b.count", 2)
        reg.inc("a.count")
        reg.gauge("z.level", 0.5)
        reg.hist("h.dist", (1.0, 2.0)).record(1.5)
        snap = reg.snapshot()
        assert list(snap["counters"]) == ["a.count", "b.count"]
        assert snap["counters"]["b.count"] == 2
        assert snap["gauges"]["z.level"] == 0.5
        assert snap["histograms"]["h.dist"]["counts"] == [0, 1, 0]

    def test_merge_adds_counters_and_buckets(self):
        a = {"counters": {"x": 1}, "gauges": {},
             "histograms": {"h": {"bounds": [1.0], "counts": [2, 3]}}}
        b = {"counters": {"x": 4, "y": 1}, "gauges": {},
             "histograms": {"h": {"bounds": [1.0], "counts": [1, 1]}}}
        out = merge_snapshots(a, b)
        assert out["counters"] == {"x": 5, "y": 1}
        assert out["histograms"]["h"]["counts"] == [3, 4]

    def test_merge_averages_gauges_with_weights(self):
        a = {"counters": {}, "gauges": {"g": 1.0}, "histograms": {}}
        b = {"counters": {}, "gauges": {"g": 3.0}, "histograms": {}}
        once = merge_snapshots(a, b)
        assert once["gauges"]["g"] == 2.0 and once["gauges"]["g#n"] == 2.0
        # folding a third snapshot keeps a true mean, not a mean of means
        c = {"counters": {}, "gauges": {"g": 8.0}, "histograms": {}}
        twice = merge_snapshots(once, c)
        assert twice["gauges"]["g"] == pytest.approx(4.0)
        assert twice["gauges"]["g#n"] == 3.0

    def test_merge_handles_none(self):
        out = merge_snapshots(None, {"counters": {"x": 1}, "gauges": {},
                                     "histograms": {}})
        assert out["counters"] == {"x": 1}

    def test_histogram_bounds_mismatch_raises(self):
        h = Histogram((1.0,))
        with pytest.raises(ValueError, match="bounds mismatch"):
            h.merge(Histogram((2.0,)))

    def test_merge_snapshots_names_the_mismatched_histogram(self):
        a = {"counters": {}, "gauges": {},
             "histograms": {"h.bad": {"bounds": [1.0], "counts": [1, 1]}}}
        b = {"counters": {}, "gauges": {},
             "histograms": {"h.bad": {"bounds": [2.0], "counts": [1, 1]}}}
        with pytest.raises(ValueError, match="'h.bad'.*bounds mismatch"):
            merge_snapshots(a, b)

    def test_from_dict_rejects_wrong_bucket_count(self):
        with pytest.raises(ValueError, match="counts/bounds mismatch"):
            Histogram.from_dict({"bounds": [1.0, 2.0], "counts": [1, 2]})

    def test_series_merge_sums_elementwise_and_pads(self):
        a = {"counters": {}, "gauges": {}, "histograms": {},
             "series": {"s": {"window": 100, "values": [1, 2, 3]}}}
        b = {"counters": {}, "gauges": {}, "histograms": {},
             "series": {"s": {"window": 100, "values": [10, 10]}}}
        out = merge_snapshots(a, b)
        assert out["series"]["s"] == {"window": 100, "values": [11, 12, 3]}

    def test_series_window_mismatch_names_the_series(self):
        a = {"counters": {}, "gauges": {}, "histograms": {},
             "series": {"s.win": {"window": 100, "values": [1]}}}
        b = {"counters": {}, "gauges": {}, "histograms": {},
             "series": {"s.win": {"window": 200, "values": [1]}}}
        with pytest.raises(ValueError, match="'s.win'.*window mismatch"):
            merge_snapshots(a, b)

    def test_snapshots_without_series_section_still_merge(self):
        # pre-profiler snapshots (older journals) have no "series" key
        old = {"counters": {"x": 1}, "gauges": {}, "histograms": {}}
        new = {"counters": {"x": 1}, "gauges": {}, "histograms": {},
               "series": {"s": {"window": 10, "values": [5]}}}
        out = merge_snapshots(old, new)
        assert out["counters"]["x"] == 2
        assert out["series"]["s"]["values"] == [5]

    def test_histogram_overflow_bucket(self):
        h = Histogram((0.0, 1.0))
        for v in (-1.0, 0.0, 0.5, 1.0, 99.0):
            h.record(v)
        # bisect_right: a value equal to a bound falls in the next bucket
        assert h.counts == [1, 2, 2] and h.total == 5


class TestRunMetrics:
    def test_every_result_carries_a_snapshot(self):
        r = simulate("vb", "lu", refs=REFS)
        assert r.metrics is not None
        snap = r.metrics
        assert snap["counters"]["events.reads"] == r.counters.reads
        assert 0.0 <= snap["gauges"]["state.l1_occupancy"] <= 1.0
        assert snap["gauges"]["state.nc_resident_blocks"] >= 0.0

    def test_metrics_deterministic_across_runs(self):
        a = simulate("vxp5", "radix", refs=REFS)
        clear_trace_cache()
        b = simulate("vxp5", "radix", refs=REFS)
        assert a.metrics == b.metrics

    def test_trace_section_only_with_tracer(self):
        plain, traced, _ = traced_pair("vb", "lu")
        assert not any(k.startswith("trace.") for k in plain.metrics["counters"])
        assert any(k.startswith("trace.") for k in traced.metrics["counters"])

    def test_nc_occupancy_histogram_covers_all_sets(self):
        r = simulate("vb", "radix", refs=REFS)
        hist = r.metrics["histograms"]["hist.nc_set_occupancy"]
        n_sets = r.config.nc.size // r.config.block_size // r.config.nc.assoc
        # one sample per NC set per cluster
        assert sum(hist["counts"]) == n_sets * r.config.n_nodes


class TestSweepAggregation:
    def test_parallel_aggregate_equals_serial(self):
        serial = sweep(SYSTEMS, BENCHES, refs=REFS)
        clear_trace_cache()
        parallel = sweep(SYSTEMS, BENCHES, refs=REFS, jobs=4)
        assert sweep_metrics(serial) == sweep_metrics(parallel)

    def test_aggregate_counters_are_sums(self):
        results = sweep(SYSTEMS, ["lu"], refs=REFS)
        agg = aggregate_metrics(r.metrics for r in results.values())
        total_reads = sum(r.counters.reads for r in results.values())
        assert agg["counters"]["events.reads"] == total_reads


class TestManifests:
    def _sweep(self, jobs=1):
        configs = resolve_sweep_configs(SYSTEMS)
        return timed_sweep(configs, ["lu"], refs=REFS, jobs=jobs)

    def test_build_manifest_shape(self):
        results, wall = self._sweep()
        m = build_manifest(results, command="test", refs=REFS, seed=1,
                           scale=0.125, jobs=1, wall_s=wall)
        assert m["kind"] == "sweep" and m["parameters"]["refs"] == REFS
        assert len(m["cells"]) == len(results)
        cell = m["cells"][0]
        for key in ("system", "benchmark", "config_sha", "trace_key",
                    "counters_sha", "metrics"):
            assert key in cell
        assert m["aggregate_metrics"]["counters"]["events.reads"] > 0

    def test_core_identical_serial_vs_parallel(self):
        results_s, _ = self._sweep(jobs=1)
        clear_trace_cache()
        results_p, _ = self._sweep(jobs=4)
        core_s = manifest_core(build_manifest(results_s, refs=REFS, seed=1))
        core_p = manifest_core(build_manifest(results_p, refs=REFS, seed=1))
        assert json.dumps(core_s, sort_keys=True) == json.dumps(core_p, sort_keys=True)

    def test_core_strips_volatile_fields(self):
        results, wall = self._sweep()
        m = build_manifest(results, refs=REFS, seed=1, jobs=3, wall_s=wall)
        core = manifest_core(m)
        for key in ("created_unix", "timing", "git_sha", "version"):
            assert key not in core
        assert "jobs" not in core["parameters"]
        for cell in core["cells"]:
            assert "elapsed_s" not in cell

    def test_write_manifest_atomic_and_named(self, tmp_path):
        results, wall = self._sweep()
        m = build_manifest(results, refs=REFS, seed=1, wall_s=wall)
        path = write_manifest(m, tmp_path, name="probe")
        assert path.name == "probe-manifest.json"
        assert json.loads(path.read_text())["manifest_version"] == 1
        assert list(tmp_path.glob("*.tmp.json")) == []  # no temp debris

    def test_maybe_write_honours_env(self, tmp_path, monkeypatch):
        results, wall = self._sweep()
        monkeypatch.delenv(MANIFEST_ENV, raising=False)
        assert maybe_write_sweep_manifest(
            results, command="t", refs=REFS, seed=1, scale=0.125,
            jobs=1, wall_s=wall) is None
        monkeypatch.setenv(MANIFEST_ENV, str(tmp_path))
        path = maybe_write_sweep_manifest(
            results, command="t", refs=REFS, seed=1, scale=0.125,
            jobs=1, wall_s=wall)
        assert path is not None and path.parent == tmp_path

    def test_config_digest_distinguishes_configs(self):
        configs = resolve_sweep_configs(["base", "vb"])
        assert config_digest(configs["base"]) != config_digest(configs["vb"])
        assert config_digest(configs["base"]) == config_digest(configs["base"])
