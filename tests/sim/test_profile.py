"""Tests for the stall profiler and the Chrome trace exporter.

The two load-bearing guarantees pinned here:

* **conservation** — the profiler's per-component attributed stall sums
  *integer-equal* to ``remote_read_stall(counters, config)`` (Eq. 1) for
  every NC flavour, SRAM and DRAM latencies alike, and the profiled
  attribution matches the closed-form ``stall_components`` exactly;
* **determinism and transparency** — profiling never perturbs the
  simulation (counters identical with it on or off), and a serial sweep
  and a ``jobs=N`` sweep produce bit-identical profile snapshots.
"""

from __future__ import annotations

import math

import pytest

from repro.obs.profile import (
    DEFAULT_WINDOW,
    PROFILE_ENV,
    PROFILE_WINDOW_ENV,
    STALL_COMPONENTS,
    StallProfiler,
    attributed_stall,
    profiled_cells,
    stall_breakdown,
)
from repro.obs.timeline import (
    export_chrome_trace,
    trace_simulation,
    validate_chrome_trace,
    write_chrome_trace,
)
from repro.sim.latency import remote_read_stall, stall_components
from repro.sim.parallel import sweep_metrics
from repro.sim.runner import clear_trace_cache, simulate, sweep
from repro.system.builder import system_config

REFS = 8_000

#: every distinct NC/PC flavour, including the DRAM-latency systems
#: (ncd/dinf use DRAM hit/miss latencies, so they catch a profiler that
#: hard-codes the SRAM Table 1 numbers)
CONSERVATION_SYSTEMS = ["base", "vb", "vpp5", "ncd", "vxp5", "dinf", "p"]


class TestConservation:
    @pytest.mark.parametrize("system", CONSERVATION_SYSTEMS)
    def test_attribution_sums_to_eq1_exactly(self, system):
        r = simulate(system, "radix", refs=REFS, profile=True)
        attributed = attributed_stall(r.metrics, system, "radix")
        assert attributed == int(remote_read_stall(r.counters, r.config))

    @pytest.mark.parametrize("system", CONSERVATION_SYSTEMS)
    def test_breakdown_matches_closed_form_per_component(self, system):
        r = simulate(system, "radix", refs=REFS, profile=True)
        assert stall_breakdown(r.metrics, system, "radix") == stall_components(
            r.counters, r.config
        )

    def test_relocation_component_charged(self):
        # vpp5 relocates pages at this scale; the 225-cycle spans must
        # land in the 'relocation' component, not vanish
        r = simulate("vpp5", "barnes", refs=40_000, profile=True)
        parts = stall_breakdown(r.metrics, "vpp5", "barnes")
        assert parts["relocation"] == (
            r.counters.pc_relocations * r.config.latency.page_relocation
        )

    def test_stall_components_result_property(self):
        r = simulate("vb", "lu", refs=REFS)
        parts = r.stall_components
        assert set(parts) == set(STALL_COMPONENTS)
        assert sum(parts.values()) == int(remote_read_stall(r.counters, r.config))


class TestTransparency:
    @pytest.mark.parametrize("system", ["base", "vb", "vxp5", "ncd"])
    def test_counters_identical_with_and_without_profiler(self, system):
        plain = simulate(system, "radix", refs=REFS)
        profiled = simulate(system, "radix", refs=REFS, profile=True)
        assert plain.counters == profiled.counters

    def test_profile_off_by_default(self, monkeypatch):
        monkeypatch.delenv(PROFILE_ENV, raising=False)
        r = simulate("vb", "radix", refs=REFS)
        assert profiled_cells(r.metrics) == []

    def test_env_enables_profiling(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        r = simulate("vb", "radix", refs=REFS)
        assert profiled_cells(r.metrics) == ["vb/radix"]
        monkeypatch.setenv(PROFILE_ENV, "off")
        r2 = simulate("vb", "radix", refs=REFS)
        assert profiled_cells(r2.metrics) == []


class TestSweepDeterminism:
    def test_serial_and_parallel_profiles_bit_identical(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        systems, benches = ["base", "vb"], ["lu", "radix"]
        serial = sweep(systems, benches, refs=REFS, jobs=1)
        clear_trace_cache()
        parallel = sweep(systems, benches, refs=REFS, jobs=4)
        for key in serial:
            assert serial[key].metrics == parallel[key].metrics
        assert sweep_metrics(serial) == sweep_metrics(parallel)
        # the aggregate keeps every cell's attribution separate
        agg = sweep_metrics(serial)
        assert sorted(profiled_cells(agg)) == sorted(
            f"{s}/{b}" for s in systems for b in benches
        )

    def test_aggregate_conserves_per_cell(self, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, "1")
        results = sweep(["vb", "vpp5"], ["radix"], refs=REFS)
        agg = sweep_metrics(results)
        for (system, bench), r in results.items():
            assert attributed_stall(agg, system, bench) == int(
                remote_read_stall(r.counters, r.config)
            )


class TestTimelineSeries:
    def test_window_count_covers_the_whole_run(self):
        window = 1_000
        config = system_config("vb")
        profiler = StallProfiler(config, window=window)
        r = simulate("vb", "radix", refs=REFS, profile=True)
        refs = r.refs
        series = r.metrics["series"]["series.profile/vb/radix/remote_misses"]
        assert series["window"] == DEFAULT_WINDOW
        assert len(series["values"]) == math.ceil(refs / DEFAULT_WINDOW)
        assert profiler.window == window  # explicit window overrides env

    def test_series_totals_match_counters(self):
        r = simulate("vxp5", "radix", refs=REFS, profile=True)
        series = r.metrics["series"]
        pre = "series.profile/vxp5/radix/"
        c = r.counters
        assert sum(series[pre + "remote_misses"]["values"]) == (
            c.read_remote + c.write_remote
        )
        assert sum(series[pre + "nc_hits"]["values"]) == (
            c.read_nc_hits + c.write_nc_hits
        )
        assert sum(series[pre + "relocations"]["values"]) == c.pc_relocations
        assert sum(series[pre + "stall_cycles"]["values"]) == attributed_stall(
            r.metrics, "vxp5", "radix"
        )

    def test_window_env_is_honoured(self, monkeypatch):
        monkeypatch.setenv(PROFILE_WINDOW_ENV, "500")
        profiler = StallProfiler(system_config("base"))
        assert profiler.window == 500
        monkeypatch.setenv(PROFILE_WINDOW_ENV, "0")
        with pytest.raises(ValueError, match="positive"):
            StallProfiler(system_config("base"))

    def test_snapshot_before_finish_is_an_error(self):
        profiler = StallProfiler(system_config("base"))
        with pytest.raises(RuntimeError, match="finish"):
            profiler.snapshot("base", "radix")

    def test_unit_hooks_and_finish(self):
        profiler = StallProfiler(system_config("vb"), window=10)
        profiler.on_nc_hit(1, False)
        profiler.on_remote(5, False)
        profiler.on_remote(12, True)   # write: counted, not charged
        profiler.on_cluster_hit(25, False)
        profiler.finish(30)
        lat = profiler.latencies
        assert profiler.stall_cycles["nc_hit"] == lat["nc_hit"]
        assert profiler.stall_cycles["remote_miss"] == lat["remote_miss"]
        assert profiler.total_stall == (
            lat["nc_hit"] + lat["remote_miss"] + lat["cluster_hit"]
        )
        tl = profiler.timeline()
        assert len(tl["remote_misses"]) == 3  # refs 1-10, 11-20, 21-30
        assert tl["remote_misses"] == [1, 1, 0]
        assert tl["cluster_hits"] == [0, 0, 1]
        profiler.finish(30)  # idempotent
        assert len(profiler.timeline()["remote_misses"]) == 3


class TestChromeTraceExport:
    def test_exported_trace_validates(self, tmp_path):
        result, doc = trace_simulation("vpp5", "radix", refs=REFS)
        assert validate_chrome_trace(doc) == []
        path = tmp_path / "trace.json"
        write_chrome_trace(doc, str(path))
        assert validate_chrome_trace(str(path)) == []
        assert result.refs > 0

    def test_spans_and_metadata_shape(self):
        _, doc = trace_simulation("vb", "radix", refs=REFS)
        events = doc["traceEvents"]
        phases = {e["ph"] for e in events}
        assert phases <= {"X", "i", "M"} and "X" in phases and "M" in phases
        # one process_name + one thread_name row per cluster
        names = [e for e in events if e["ph"] == "M" and e["name"] == "process_name"]
        clusters = {e["pid"] for e in events}
        assert len(names) == len(clusters)
        # spans carry the Table 1/2 latency as their duration
        spans = [e for e in events if e["ph"] == "X"]
        assert all(e["dur"] > 0 for e in spans)
        assert doc["metadata"]["system"] == "vb"

    def test_per_cluster_rows_never_self_overlap(self):
        _, doc = trace_simulation("vb", "radix", refs=REFS)
        last_end = {}
        for e in doc["traceEvents"]:
            if e["ph"] != "X":
                continue
            assert e["ts"] >= last_end.get(e["pid"], 0)
            last_end[e["pid"]] = e["ts"] + e["dur"]

    def test_export_is_deterministic(self):
        _, a = trace_simulation("vb", "radix", refs=REFS)
        clear_trace_cache()
        _, b = trace_simulation("vb", "radix", refs=REFS)
        assert a == b

    def test_validator_rejects_malformed_documents(self):
        assert validate_chrome_trace([]) != []
        assert validate_chrome_trace({}) == ["traceEvents is missing or not an array"]
        bad_phase = {"traceEvents": [
            {"name": "x", "ph": "B", "pid": 0, "tid": 0, "ts": 0}
        ]}
        assert any("phase" in p for p in validate_chrome_trace(bad_phase))
        no_dur = {"traceEvents": [
            {"name": "x", "ph": "X", "pid": 0, "tid": 0, "ts": 0}
        ]}
        assert any("dur" in p for p in validate_chrome_trace(no_dur))
        bad_ts = {"traceEvents": [
            {"name": "x", "ph": "i", "pid": 0, "tid": 0, "ts": -1, "s": "t"}
        ]}
        assert any("ts" in p for p in validate_chrome_trace(bad_ts))

    def test_validator_reads_files_and_reports_unreadable(self, tmp_path):
        missing = tmp_path / "nope.json"
        assert any(
            "unreadable" in p for p in validate_chrome_trace(str(missing))
        )

    def test_export_empty_stream_flags_emptiness(self):
        doc = export_chrome_trace([], system_config("base"))
        assert any("empty" in p for p in validate_chrome_trace(doc))
