"""Unit tests for Eq. 1 arithmetic and the result container."""

from __future__ import annotations

import pytest

from repro.sim import latency as lat
from repro.sim.results import SimulationResult
from repro.stats import Counters
from repro.system.builder import system_config


def counters(**kw) -> Counters:
    c = Counters()
    for k, v in kw.items():
        setattr(c, k, v)
    return c


class TestLatencySelection:
    def test_sram_system_latencies(self):
        cfg = system_config("vb")
        assert lat.nc_hit_latency(cfg) == 1
        assert lat.remote_miss_latency(cfg) == 30

    def test_dram_system_latencies(self):
        cfg = system_config("ncd")
        assert lat.nc_hit_latency(cfg) == 13
        assert lat.remote_miss_latency(cfg) == 33

    def test_infinite_dram_latencies(self):
        cfg = system_config("dinf")
        assert lat.nc_hit_latency(cfg) == 13
        assert lat.remote_miss_latency(cfg) == 33

    def test_base_has_no_tag_penalty(self):
        assert lat.remote_miss_latency(system_config("base")) == 30


class TestEquationOne:
    def test_reads_only(self):
        cfg = system_config("vbp")
        c = counters(
            read_cluster_hits=10,
            read_nc_hits=100,
            read_pc_hits=50,
            read_remote=20,
            write_remote=999,  # must not contribute
            pc_relocations=2,
        )
        expected = 10 * 1 + 100 * 1 + 50 * 10 + 20 * 30 + 2 * 225
        assert lat.remote_read_stall(c, cfg) == expected

    def test_dram_nc_weights(self):
        cfg = system_config("ncd")
        c = counters(read_nc_hits=10, read_remote=10)
        assert lat.remote_read_stall(c, cfg) == 10 * 13 + 10 * 33

    def test_relocation_overhead(self):
        cfg = system_config("ncp5")
        c = counters(pc_relocations=4)
        assert lat.relocation_overhead_cycles(c, cfg) == 900

    def test_miss_ratios(self):
        c = counters(reads=50, writes=50, read_remote=10, write_remote=5)
        assert lat.miss_ratio_read(c) == pytest.approx(10.0)
        assert lat.miss_ratio_write(c) == pytest.approx(5.0)

    def test_relocation_ratio_in_equivalent_misses(self):
        cfg = system_config("ncp5")
        c = counters(reads=100, pc_relocations=4)
        # 4 relocations x 7.5 equivalent misses / 100 refs = 30%
        assert lat.relocation_overhead_ratio(c, cfg) == pytest.approx(30.0)

    def test_zero_refs_safe(self):
        c = Counters()
        assert lat.miss_ratio_read(c) == 0.0
        assert lat.relocation_overhead_ratio(c, system_config("ncp5")) == 0.0


class TestSimulationResult:
    def _result(self, system="vb", **kw):
        cfg = system_config(system)
        c = counters(**kw)
        return SimulationResult(system, "lu", cfg, c, refs=c.refs)

    def test_stall_properties_consistent(self):
        r = self._result(
            "vbp", reads=100, read_nc_hits=10, read_remote=5, pc_relocations=2,
            l1_read_hits=85,
        )
        assert r.remote_read_stall == 10 * 1 + 5 * 30 + 2 * 225
        assert r.relocation_overhead_cycles == 450
        assert r.stall_without_relocation == r.remote_read_stall - 450

    def test_normalized_stall(self):
        a = self._result(reads=10, read_remote=10, l1_read_hits=0)
        b = self._result(reads=10, read_remote=5, read_nc_hits=5, l1_read_hits=0)
        assert b.normalized_stall(a) == pytest.approx((5 * 30 + 5 * 1) / 300)

    def test_normalized_traffic(self):
        a = self._result(reads=4, read_remote=4, l1_read_hits=0)
        b = self._result(reads=4, read_remote=2, read_nc_hits=2, l1_read_hits=0)
        assert b.normalized_traffic(a) == pytest.approx(0.5)

    def test_zero_reference_is_inf(self):
        a = self._result()
        b = self._result(reads=1, read_remote=1, l1_read_hits=0)
        assert b.normalized_stall(a) == float("inf")

    def test_summary_keys(self):
        s = self._result(reads=10, l1_read_hits=10).summary()
        assert {"refs", "remote_read_stall_cycles", "traffic_blocks"} <= set(s)
