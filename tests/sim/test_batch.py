"""Tests for the vectorised batch execution engine (`repro.sim.batch`).

The batch engine is an optimisation, never a semantic change: every test
here pins bit-identity against the interpreter — counters *and* complete
final machine state — across the full NC-variant matrix, across batch
boundaries, under the process pool, through the fuzzer's adversarial
strategies, and with the stall profiler attached.
"""

from __future__ import annotations

import json

import pytest

from repro.check.fuzz import FuzzCase, generate_case, run_case_batch
from repro.check.oracle import machine_snapshot
from repro.errors import CheckpointError, ConfigurationError
from repro.obs.profile import attributed_stall
from repro.sim.batch import (
    DEFAULT_ENGINE,
    ENGINE_ENV,
    ENGINES,
    BatchSimulator,
    make_simulator,
    resolve_engine,
)
from repro.sim.latency import remote_read_stall
from repro.sim.runner import get_trace, resolve_sweep_configs, simulate, sweep
from repro.sim.simulator import Simulator
from repro.system.builder import build_machine, system_config

ALL_VARIANTS = ["base", "nc", "ncd", "ncs", "vb", "vp", "p2", "vbp2", "vxp2"]
ALL_BENCHMARKS = [
    "barnes", "cholesky", "fft", "fmm", "lu", "ocean", "radix", "raytrace",
]


def run_both_engines(system, benchmark, refs=3_000, scale=0.03125):
    """Run one cell on both engines; return the two simulators."""
    trace = get_trace(benchmark, refs=refs, scale=scale)
    config = system_config(system)
    interp = Simulator(build_machine(config, dataset_bytes=trace.dataset_bytes))
    interp.run(trace)
    batch = BatchSimulator(build_machine(config, dataset_bytes=trace.dataset_bytes))
    batch.run(trace)
    return interp, batch


class TestBitIdentityMatrix:
    """batch == interpreter on every NC variant x every benchmark."""

    @pytest.mark.parametrize("system", ALL_VARIANTS)
    @pytest.mark.parametrize("bench", ALL_BENCHMARKS)
    def test_counters_and_state_identical(self, system, bench):
        interp, batch = run_both_engines(system, bench)
        assert interp.counters.as_dict() == batch.counters.as_dict()
        assert machine_snapshot(interp.machine) == machine_snapshot(batch.machine)


class TestEngineSelection:
    def test_resolve_explicit(self):
        assert resolve_engine("batch") == "batch"
        assert resolve_engine("interp") == "interp"
        assert resolve_engine("BATCH") == "batch"

    def test_resolve_default(self, monkeypatch):
        monkeypatch.delenv(ENGINE_ENV, raising=False)
        assert resolve_engine(None) == DEFAULT_ENGINE

    def test_resolve_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV, "batch")
        assert resolve_engine(None) == "batch"
        # an explicit choice beats the environment
        assert resolve_engine("interp") == "interp"

    def test_resolve_unknown_raises(self):
        with pytest.raises(ConfigurationError, match="unknown engine"):
            resolve_engine("turbo")

    def test_make_simulator_types(self):
        trace = get_trace("fft", refs=1_000, scale=0.03125)
        config = system_config("base")
        machine = build_machine(config, dataset_bytes=trace.dataset_bytes)
        assert isinstance(make_simulator("batch", machine), BatchSimulator)
        machine = build_machine(config, dataset_bytes=trace.dataset_bytes)
        sim = make_simulator("interp", machine)
        assert isinstance(sim, Simulator) and not isinstance(sim, BatchSimulator)

    def test_engines_registry(self):
        assert ENGINES == ("interp", "batch")

    def test_simulate_engine_kwarg(self):
        a = simulate("vb", "fft", refs=4_000, scale=0.03125)
        b = simulate("vb", "fft", refs=4_000, scale=0.03125, engine="batch")
        assert a.counters.as_dict() == b.counters.as_dict()
        assert a.metrics == b.metrics

    def test_batch_requires_fresh_machine(self):
        trace = get_trace("fft", refs=1_000, scale=0.03125)
        config = system_config("base")
        machine = build_machine(config, dataset_bytes=trace.dataset_bytes)
        Simulator(machine).run(trace)  # dirty the L1s
        with pytest.raises(ConfigurationError):
            BatchSimulator(machine)


class TestBatchBoundaries:
    """Adversarial reference patterns straddling batch boundaries.

    Shrinking ``_BATCH`` forces the crafted interactions to land both
    inside one batch and across consecutive batches; `run_case_batch`
    compares counters and final machine state against the interpreter.
    """

    @pytest.fixture(params=[4, 16, 1 << 14], ids=["b4", "b16", "b16k"])
    def batch_size(self, request, monkeypatch):
        monkeypatch.setattr(BatchSimulator, "_BATCH", request.param)
        return request.param

    def _assert_identical(self, events, system="base", n_blocks=4):
        case = FuzzCase(system, 0, "crafted", n_blocks, events)
        result = run_case_batch(case)
        assert result is None, result

    def test_upgrade_then_read_same_block_two_pids(self, batch_size):
        # pid 0 holds the block shared; pid 1 upgrades it (invalidating
        # pid 0); pid 0 re-reads — all within one batch.  The in-batch
        # coherence check must demote pid 0's re-read off the vector path.
        events = []
        for block in range(4):
            events += [(0, block, 0), (1, block, 1), (0, block, 0)]
        self._assert_identical(events * 8)

    def test_write_then_read_same_pid(self, batch_size):
        events = []
        for block in range(4):
            events += [(0, block, 1), (0, block, 0), (1, block, 0), (1, block, 1)]
        self._assert_identical(events * 8)

    def test_miss_evicted_line_rereferenced(self, batch_size):
        # cycle more blocks than the tiny L1 holds so every miss evicts,
        # then immediately re-reference the victim inside the same batch
        events = []
        for round_ in range(8):
            for block in range(4):
                events.append((0, block, 0))
                events.append((0, (block + 1) % 4, 0))
                events.append((0, block, 0))
        self._assert_identical(events)

    def test_ping_pong_ownership(self, batch_size):
        events = []
        for i in range(64):
            events.append((i % 2, 1, i % 3 == 0))
            events.append(((i + 1) % 2, 1, 0))
        self._assert_identical(events, system="vb")

    def test_dense_read_run_split_by_boundary(self, batch_size):
        # a long pure-read run (vector fast path) with a single remote
        # write dropped mid-run: correctness must not depend on where the
        # batch boundary falls inside the run
        events = [(0, 1, 0)] * 40 + [(1, 1, 1)] + [(0, 1, 0)] * 40
        self._assert_identical(events, system="vxp2")


class TestFuzzStrategiesThroughBatch:
    """Every fuzzer strategy replays identically on the batch engine."""

    @pytest.mark.parametrize("system", ALL_VARIANTS)
    @pytest.mark.parametrize(
        "strategy", ["random_walk", "upgrade_race", "victim_storm", "relocation_edge"]
    )
    def test_strategy_identical(self, system, strategy):
        case = generate_case(system, 11, strategy)
        result = run_case_batch(case)
        assert result is None, result


class TestBatchUnderJobs:
    """serial == parallel == batch-parallel, cell for cell."""

    def test_three_way_sweep_identity(self):
        systems, benches = ["base", "vb"], ["fft", "lu"]
        kw = dict(refs=4_000, scale=0.03125)
        serial = sweep(systems, benches, jobs=1, **kw)
        batch_serial = sweep(systems, benches, jobs=1, engine="batch", **kw)
        batch_parallel = sweep(systems, benches, jobs=2, engine="batch", **kw)
        assert list(serial) == list(batch_serial) == list(batch_parallel)
        for key in serial:
            a = serial[key].counters.as_dict()
            assert a == batch_serial[key].counters.as_dict()
            assert a == batch_parallel[key].counters.as_dict()
            assert serial[key].metrics == batch_parallel[key].metrics


class TestBatchProfiled:
    """The profiler attributes stalls identically on the batch engine."""

    @pytest.mark.parametrize("system", ["vb", "vxp2"])
    def test_profiled_run_identical_and_conserves(self, system):
        a = simulate(system, "radix", refs=6_000, scale=0.03125, profile=True)
        b = simulate(
            system, "radix", refs=6_000, scale=0.03125, profile=True,
            engine="batch",
        )
        assert a.counters.as_dict() == b.counters.as_dict()
        assert a.metrics == b.metrics
        attributed = attributed_stall(b.metrics, system, "radix")
        assert attributed == int(remote_read_stall(b.counters, b.config))


class TestEngineInJournal:
    def test_header_records_engine(self, tmp_path):
        run_dir = tmp_path / "run"
        sweep(["base"], ["fft"], refs=2_000, scale=0.03125,
              run_dir=str(run_dir), engine="batch")
        header = json.loads((run_dir / "run.json").read_text())
        assert header["engine"] == "batch"

    def test_resume_engine_mismatch_refuses(self, tmp_path):
        run_dir = tmp_path / "run"
        kw = dict(refs=2_000, scale=0.03125, run_dir=str(run_dir))
        sweep(["base"], ["fft"], engine="batch", **kw)
        with pytest.raises(CheckpointError, match="engine"):
            sweep(["base"], ["fft"], engine="interp", **kw)

    def test_pre_engine_header_reads_as_interp(self, tmp_path):
        # a run.json written before the engine field existed must resume
        # under the interpreter (the only engine that existed then)
        run_dir = tmp_path / "run"
        kw = dict(refs=2_000, scale=0.03125, run_dir=str(run_dir))
        sweep(["base"], ["fft"], engine="interp", **kw)
        header_path = run_dir / "run.json"
        header = json.loads(header_path.read_text())
        del header["engine"]
        header_path.write_text(json.dumps(header))
        sweep(["base"], ["fft"], engine="interp", **kw)  # resumes cleanly
        with pytest.raises(CheckpointError, match="engine"):
            sweep(["base"], ["fft"], engine="batch", **kw)


class TestEngineInManifest:
    def test_manifest_records_engine_core_strips_it(self):
        from repro.obs.manifest import build_manifest, manifest_core

        results = sweep(["base"], ["fft"], refs=2_000, scale=0.03125,
                        engine="batch")
        manifest = build_manifest(
            results, refs=2_000, seed=1, scale=0.03125, jobs=1, engine="batch"
        )
        assert manifest["parameters"]["engine"] == "batch"
        core = manifest_core(manifest)
        assert "engine" not in core["parameters"]
        # bit-identical engines => bit-identical core manifests
        interp_results = sweep(["base"], ["fft"], refs=2_000, scale=0.03125)
        interp_manifest = build_manifest(
            interp_results, refs=2_000, seed=1, scale=0.03125, jobs=1,
            engine="interp",
        )
        assert json.dumps(manifest_core(interp_manifest), sort_keys=True) == \
            json.dumps(core, sort_keys=True)


class TestEngineComparison:
    def test_report_and_json(self):
        from repro.sim.parallel import (
            engine_comparison_json,
            engine_comparison_report,
            timed_sweep,
        )

        configs = resolve_sweep_configs(["base"])
        interp, wi = timed_sweep(configs, ["fft"], refs=3_000, scale=0.03125)
        batch, wb = timed_sweep(
            configs, ["fft"], refs=3_000, scale=0.03125, engine="batch"
        )
        report = engine_comparison_report(interp, batch)
        assert "speedup" in report and "base" in report
        doc = engine_comparison_json(interp, batch, wi, wb, jobs=1)
        cell = doc["cells"]["base/fft"]
        assert cell["speedup"] > 0
        assert doc["total_speedup"] > 0
        assert set(doc["engines"]) == {"interp", "batch"}
        names = [e["name"] for e in doc["engines"]["batch"]["benchmarks"]]
        assert "perf::sweep_total" in names
