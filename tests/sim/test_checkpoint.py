"""Tests for the sweep journal: crash-safe checkpoint/resume that merges
bit-identically with a from-scratch run."""

from __future__ import annotations

import json

import pytest

from repro.errors import CheckpointError
from repro.sim.checkpoint import SweepJournal
from repro.sim.parallel import RecoveryLog
from repro.sim.runner import clear_trace_cache, resolve_sweep_configs, sweep

SYSTEMS = ["base", "vb"]
BENCHES = ["fft", "lu"]
REFS = 3_000
SCALE = 0.02


@pytest.fixture(autouse=True)
def _isolated(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path / "cache"))
    monkeypatch.setenv("REPRO_RETRY_BACKOFF", "0")
    clear_trace_cache()
    yield
    clear_trace_cache()


def _sweep(run_dir=None, recovery=None, jobs=1):
    return sweep(
        SYSTEMS,
        BENCHES,
        refs=REFS,
        scale=SCALE,
        jobs=jobs,
        run_dir=str(run_dir) if run_dir is not None else None,
        recovery=recovery,
    )


def _assert_identical(expected, actual):
    assert list(expected) == list(actual)
    for key in expected:
        assert expected[key].counters == actual[key].counters, key
        assert expected[key].metrics == actual[key].metrics, key


class TestJournalRoundTrip:
    def test_append_then_load_restores_cells(self, tmp_path):
        results = _sweep()
        configs = resolve_sweep_configs(SYSTEMS)
        journal = SweepJournal.open(
            tmp_path / "run",
            refs=REFS,
            seed=1,
            scale=SCALE,
            systems=SYSTEMS,
            benchmarks=BENCHES,
        )
        with journal:
            for result in results.values():
                journal.append(result, SCALE)
        restored = journal.load(configs)
        assert set(restored) == set(results)
        for key in results:
            assert restored[key].counters == results[key].counters
            assert restored[key].metrics == results[key].metrics
        assert journal.torn_lines == 0 and journal.stale_records == 0

    def test_header_written_once_and_validated(self, tmp_path):
        run = tmp_path / "run"
        SweepJournal.open(
            run, refs=REFS, seed=1, scale=SCALE,
            systems=SYSTEMS, benchmarks=BENCHES,
        ).close()
        header = json.loads((run / "run.json").read_text())
        assert header["refs"] == REFS and header["systems"] == SYSTEMS
        # reopening with identical parameters is fine
        SweepJournal.open(
            run, refs=REFS, seed=1, scale=SCALE,
            systems=SYSTEMS, benchmarks=BENCHES,
        ).close()

    def test_parameter_mismatch_raises(self, tmp_path):
        run = tmp_path / "run"
        SweepJournal.open(
            run, refs=REFS, seed=1, scale=SCALE,
            systems=SYSTEMS, benchmarks=BENCHES,
        ).close()
        with pytest.raises(CheckpointError) as excinfo:
            SweepJournal.open(
                run, refs=REFS * 2, seed=1, scale=SCALE,
                systems=SYSTEMS, benchmarks=BENCHES,
            )
        assert "refs" in str(excinfo.value)

    def test_unreadable_header_raises(self, tmp_path):
        run = tmp_path / "run"
        run.mkdir()
        (run / "run.json").write_text("{not json")
        with pytest.raises(CheckpointError):
            SweepJournal.open(
                run, refs=REFS, seed=1, scale=SCALE,
                systems=SYSTEMS, benchmarks=BENCHES,
            )


class TestJournalTolerance:
    def _journalled_run(self, tmp_path):
        run = tmp_path / "run"
        results = _sweep(run_dir=run)
        return run, results

    def test_torn_trailing_line_skipped(self, tmp_path):
        run, results = self._journalled_run(tmp_path)
        journal_path = run / "journal.jsonl"
        with open(journal_path, "a", encoding="utf-8") as fh:
            fh.write('{"journal_version": 1, "system": "base", "bench')  # torn
        journal = SweepJournal(run)
        restored = journal.load(resolve_sweep_configs(SYSTEMS))
        assert journal.torn_lines == 1
        assert set(restored) == set(results)

    def test_tampered_counters_discarded(self, tmp_path):
        run, results = self._journalled_run(tmp_path)
        journal_path = run / "journal.jsonl"
        lines = journal_path.read_text().strip().splitlines()
        rec = json.loads(lines[0])
        rec["counters"]["reads"] = rec["counters"]["reads"] + 1
        lines[0] = json.dumps(rec, sort_keys=True)
        journal_path.write_text("\n".join(lines) + "\n")
        journal = SweepJournal(run)
        restored = journal.load(resolve_sweep_configs(SYSTEMS))
        assert journal.stale_records == 1
        assert len(restored) == len(results) - 1

    def test_config_change_invalidates_records(self, tmp_path):
        run, results = self._journalled_run(tmp_path)
        journal = SweepJournal(run)
        changed = resolve_sweep_configs(SYSTEMS, cache_assoc=4)
        restored = journal.load(changed)
        assert restored == {}
        assert journal.stale_records == len(results)


class TestResume:
    def test_resume_bit_identical_to_scratch(self, tmp_path):
        scratch = _sweep()
        clear_trace_cache()

        run = tmp_path / "run"
        first = _sweep(run_dir=run)
        _assert_identical(scratch, first)

        # drop the last journalled cell to simulate an interrupted run
        journal_path = run / "journal.jsonl"
        lines = journal_path.read_text().strip().splitlines()
        journal_path.write_text("\n".join(lines[:-1]) + "\n")

        clear_trace_cache()
        recovery = RecoveryLog()
        resumed = _sweep(run_dir=run, recovery=recovery)
        _assert_identical(scratch, resumed)
        assert recovery.counts.get("cells_resumed", 0) == 1

    def test_fully_journalled_run_resumes_without_simulating(self, tmp_path):
        run = tmp_path / "run"
        first = _sweep(run_dir=run)
        recovery = RecoveryLog()
        resumed = _sweep(run_dir=run, recovery=recovery)
        _assert_identical(first, resumed)
        assert recovery.counts.get("cells_resumed", 0) == 1
        # nothing was re-simulated, so nothing was re-journalled
        lines = (run / "journal.jsonl").read_text().strip().splitlines()
        assert len(lines) == len(first)

    def test_resume_parallel_matches_scratch(self, tmp_path):
        scratch = _sweep()
        clear_trace_cache()

        run = tmp_path / "run"
        partial = dict(scratch)
        journal = SweepJournal.open(
            run, refs=REFS, seed=1, scale=SCALE,
            systems=SYSTEMS, benchmarks=BENCHES,
        )
        with journal:
            # journal only half the matrix; the rest runs in workers
            for key in list(partial)[:2]:
                journal.append(partial[key], SCALE)

        recovery = RecoveryLog()
        resumed = _sweep(run_dir=run, recovery=recovery, jobs=2)
        _assert_identical(scratch, resumed)
        assert recovery.counts.get("cells_resumed", 0) == 1

    def test_torn_journal_surfaces_repair_note(self, tmp_path):
        run = tmp_path / "run"
        _sweep(run_dir=run)
        with open(run / "journal.jsonl", "a", encoding="utf-8") as fh:
            fh.write('{"torn')
        clear_trace_cache()
        recovery = RecoveryLog()
        _sweep(run_dir=run, recovery=recovery)
        assert recovery.counts.get("journal_repaired", 0) == 1
