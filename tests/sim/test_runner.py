"""Unit tests for the high-level simulate/sweep entry points."""

from __future__ import annotations

import pytest

from repro.errors import UnknownBenchmarkError, UnknownSystemError
from repro.sim.runner import clear_trace_cache, get_trace, simulate, sweep


class TestGetTrace:
    def test_cache_returns_same_object(self):
        clear_trace_cache()
        a = get_trace("lu", refs=5_000)
        b = get_trace("lu", refs=5_000)
        assert a is b

    def test_cache_distinguishes_params(self):
        clear_trace_cache()
        a = get_trace("lu", refs=5_000)
        b = get_trace("lu", refs=5_000, seed=2)
        c = get_trace("lu", refs=6_000)
        assert a is not b and a is not c

    def test_unknown_benchmark(self):
        with pytest.raises(UnknownBenchmarkError):
            get_trace("linpack")


class TestSimulate:
    def test_returns_consistent_result(self):
        r = simulate("vb", "lu", refs=20_000)
        assert r.system == "vb" and r.benchmark == "lu"
        assert r.counters.refs == r.refs
        r.counters.check()

    def test_deterministic(self):
        a = simulate("vb", "lu", refs=20_000)
        b = simulate("vb", "lu", refs=20_000)
        assert a.counters.as_dict() == b.counters.as_dict()

    def test_unknown_system(self):
        with pytest.raises(UnknownSystemError):
            simulate("warp", "lu", refs=5_000)

    def test_config_overrides_forwarded(self):
        r = simulate("vb", "lu", refs=20_000, cache_assoc=4)
        assert r.config.cache.assoc == 4

    def test_elapsed_recorded(self):
        assert simulate("base", "lu", refs=5_000).elapsed_s > 0


class TestSweep:
    def test_matrix_keys(self):
        out = sweep(["base", "vb"], ["lu"], refs=10_000)
        assert set(out) == {("base", "lu"), ("vb", "lu")}

    def test_same_trace_across_systems(self):
        out = sweep(["base", "vb"], ["lu"], refs=10_000)
        assert out[("base", "lu")].refs == out[("vb", "lu")].refs
