"""Tests for the optional protocol variants and counter refinements:
MOESIR's O state, decrement-on-invalidation, and NC-set counter sharing.
"""

from __future__ import annotations


from repro.coherence.states import MESIR, NCState
from repro.params import BusProtocol
from repro.sim.runner import simulate
from tests.conftest import Harness, addr, tiny_config


def moesir_harness(system="vb", **kw):
    return Harness(tiny_config(system, protocol=BusProtocol.MOESIR, **kw))


class TestOState:
    def test_peer_read_keeps_dirty_shared(self):
        h = moesir_harness()
        h.home(0, 1)
        h.write(0, addr(0))
        h.read(1, addr(0))
        assert h.l1_state(0, addr(0)) == MESIR.O
        assert h.l1_state(1, addr(0)) == MESIR.S
        # the whole point: no write-back entered the victim NC
        assert h.nc_state(0, addr(0)) is None
        assert h.counters.writebacks_absorbed == 0

    def test_mesir_downgrade_pollutes_instead(self):
        h = Harness(tiny_config("vb"))
        h.home(0, 1)
        h.write(0, addr(0))
        h.read(1, addr(0))
        assert h.l1_state(0, addr(0)) == MESIR.S
        assert h.nc_state(0, addr(0)) == NCState.DIRTY

    def test_o_holder_write_upgrades_to_m(self):
        h = moesir_harness()
        h.home(0, 1)
        h.write(0, addr(0))
        h.read(1, addr(0))
        h.write(0, addr(0))  # upgrade from O
        assert h.l1_state(0, addr(0)) == MESIR.M
        assert h.l1_state(1, addr(0)) is None

    def test_o_victim_captured_dirty(self):
        h = moesir_harness()
        h.home(0, 1)
        h.home(2, 0)
        h.home(3, 0)
        h.write(0, addr(0))
        h.read(1, addr(0))  # pid0 -> O
        # evict pid0's O copy
        block_off = 0
        for page in (2, 3):
            h.read(0, addr(page, block_off))
            h.read(0, addr(page, block_off + 16))
        assert h.nc_state(0, addr(0)) == NCState.DIRTY
        assert h.counters.writebacks_absorbed == 1

    def test_remote_read_flushes_o_owner(self):
        h = moesir_harness()
        h.home(0, 1)
        h.write(0, addr(0))
        h.read(1, addr(0))  # O in pid0
        h.read(2, addr(0))  # home cluster reads: owner flush finds the O copy
        assert h.l1_state(0, addr(0)) == MESIR.S
        assert h.counters.writebacks_remote == 1

    def test_o_single_dirty_copy_invariant(self):
        h = moesir_harness()
        h.home(0, 1)
        h.write(0, addr(0))
        h.read(1, addr(0))
        assert h.machine.dirty_copies_of(addr(0) >> 6) == 1

    def test_moesir_runs_end_to_end(self):
        r = simulate("vb", "radix", refs=30_000, protocol=BusProtocol.MOESIR)
        r.counters.check()


class TestDecrementOnInvalidation:
    def test_directory_counter_corrected(self):
        h = Harness(
            tiny_config("p5", decrement_on_invalidation=True)
        )
        h.home(0, 1)
        h.home(2, 0)
        h.home(3, 0)
        # build up a capacity-miss count on page 0 for cluster 0
        for _ in range(3):
            h.read(0, addr(0, 0))
            for page in (2, 3):
                h.read(0, addr(page, 0))
                h.read(0, addr(page, 16))
        counters = h.machine.dir_counters
        before = counters.count(0, 0)
        assert before >= 2
        # the copy is already victimised; the home node's write sends a
        # (late) invalidation that finds nothing -> decrement
        h.write(2, addr(0, 0))
        assert counters.count(0, 0) == before - 1

    def test_no_decrement_when_copy_present(self):
        h = Harness(tiny_config("p5", decrement_on_invalidation=True))
        h.home(0, 1)
        h.read(0, addr(0, 0))
        for _ in range(2):
            h.read(0, addr(0, 16))
            h.read(0, addr(0, 0))
        counters = h.machine.dir_counters
        before = counters.count(0, 0)
        h.write(2, addr(0, 0))  # invalidation finds the cached copy
        assert counters.count(0, 0) == before

    def test_end_to_end(self):
        r = simulate("ncp5", "barnes", refs=30_000, decrement_on_invalidation=True)
        r.counters.check()


class TestCounterSharing:
    def test_shared_counters_aggregate_sets(self):
        from repro.rdc.relocation import NCSetRelocationCounters

        c = NCSetRelocationCounters(n_sets=8, page_shift_blocks=6, sharing=4)
        assert c.n_counters() == 2
        c.record_victimization(0, threshold=10)
        c.record_victimization(3, threshold=10)
        assert c.count(0) == c.count(3) == 2
        assert c.count(4) == 0
        assert list(c.shared_sets(5)) == [4, 5, 6, 7]

    def test_vxp_with_sharing_runs(self):
        r = simulate("vxp5", "barnes", refs=30_000, nc_counter_sharing=8)
        r.counters.check()

    def test_sharing_reduces_counter_memory(self):
        from repro.system.builder import build_machine, system_config

        m1 = build_machine(system_config("vxp5"), dataset_bytes=1 << 20)
        m8 = build_machine(
            system_config("vxp5", nc_counter_sharing=8), dataset_bytes=1 << 20
        )
        assert m8.nodes[0].nc_counters.n_counters() * 8 == (
            m1.nodes[0].nc_counters.n_counters()
        )
