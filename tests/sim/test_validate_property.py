"""Hypothesis: the full invariant sweep holds under random traffic, for
both protocols and across NC organisations (the strongest end-to-end net
in the suite — every structural invariant, every few steps)."""

from __future__ import annotations

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.params import BusProtocol
from repro.sim.validate import check_machine
from tests.conftest import Harness, addr, tiny_config

_access = st.tuples(
    st.integers(0, 3),
    st.integers(0, 4),
    st.integers(0, 63),
    st.booleans(),
)


@settings(max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(
    system=st.sampled_from(["base", "nc", "vb", "ncd", "vbp5", "vxp5"]),
    protocol=st.sampled_from([BusProtocol.MESIR, BusProtocol.MOESIR]),
    accesses=st.lists(_access, min_size=1, max_size=250),
)
def test_invariants_hold_for_any_interleaving(system, protocol, accesses):
    h = Harness(tiny_config(system, protocol=protocol))
    for i in range(5):
        h.home(i, i % 2)
    for k, (pid, page, off, is_write) in enumerate(accesses):
        if is_write:
            h.write(pid, addr(page, off))
        else:
            h.read(pid, addr(page, off))
        if k % 50 == 49:
            check_machine(h.machine)
    check_machine(h.machine)
    h.counters.check()


@settings(max_examples=10, deadline=None, suppress_health_check=[HealthCheck.too_slow])
@given(accesses=st.lists(_access, min_size=1, max_size=150))
def test_decrement_refinement_preserves_invariants(accesses):
    h = Harness(tiny_config("ncp5", decrement_on_invalidation=True))
    for i in range(5):
        h.home(i, i % 2)
    for pid, page, off, is_write in accesses:
        if is_write:
            h.write(pid, addr(page, off))
        else:
            h.read(pid, addr(page, off))
    check_machine(h.machine)
    # counters can never go negative under the decrement refinement
    counters = h.machine.dir_counters
    assert counters is not None
    for page in range(5):
        for cl in range(2):
            assert counters.count(page, cl) >= 0
