"""Tests for the live sweep monitor (``repro top``).

The monitor is a read-only tail over a sweep run directory's three
files — ``run.json``, ``journal.jsonl``, ``recovery.jsonl`` — so these
tests pin both the happy path (a real checkpointed sweep renders a
correct board) and the degraded ones the monitor promises to survive:
missing directories, missing headers, torn journal lines.
"""

from __future__ import annotations

import io
import json

from repro.obs.monitor import SweepProgress, watch
from repro.sim.checkpoint import (
    JOURNAL_NAME,
    RECOVERY_NAME,
    HEADER_NAME,
    iter_journal_lines,
    read_run_header,
)
from repro.sim.runner import sweep

REFS = 8_000


def run_sweep(run_dir, systems=("base", "vb"), benches=("lu",)):
    return sweep(list(systems), list(benches), refs=REFS, run_dir=str(run_dir))


class TestSweepProgress:
    def test_complete_sweep_renders_a_full_board(self, tmp_path):
        run_dir = tmp_path / "run"
        run_sweep(run_dir)
        p = SweepProgress(run_dir)
        assert p.header_present
        assert p.systems == ["base", "vb"] and p.benchmarks == ["lu"]
        assert p.total_cells == 2 and p.done_cells == 2 and p.complete
        assert p.simulated_refs > 0 and p.refs_per_sec > 0
        assert p.eta_seconds() is None  # nothing remaining
        board = p.render(jobs=2)
        assert "2/2 done (100%)" in board and "complete" in board
        grid = p.grid()
        assert len(grid) == 2  # header + one benchmark row
        assert grid[1].count("#") == 2 and "." not in grid[1]

    def test_partial_sweep_has_eta_and_dots(self, tmp_path):
        run_dir = tmp_path / "run"
        run_sweep(run_dir)
        # drop one journal record to simulate an in-flight sweep
        journal = run_dir / JOURNAL_NAME
        lines = journal.read_text().strip().splitlines()
        journal.write_text(lines[0] + "\n")
        p = SweepProgress(run_dir)
        assert p.done_cells == 1 and not p.complete
        assert p.eta_seconds(jobs=1) is not None
        assert p.eta_seconds(jobs=2) <= p.eta_seconds(jobs=1)
        assert "." in p.grid()[1] and "#" in p.grid()[1]
        assert "running" in p.render()

    def test_missing_directory_is_not_an_error(self, tmp_path):
        p = SweepProgress(tmp_path / "never-created")
        assert not p.header_present and p.total_cells == 0
        assert not p.complete
        assert "no run.json" in p.render()

    def test_torn_journal_lines_are_skipped(self, tmp_path):
        run_dir = tmp_path / "run"
        run_sweep(run_dir)
        journal = run_dir / JOURNAL_NAME
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write('{"system": "vb", "benchmark"')  # torn mid-write
            fh.write("\nnot json either\n")
        p = SweepProgress(run_dir)
        assert p.done_cells == 2 and p.complete

    def test_stray_journal_cells_not_counted_against_plan(self, tmp_path):
        run_dir = tmp_path / "run"
        run_sweep(run_dir)
        journal = run_dir / JOURNAL_NAME
        with open(journal, "a", encoding="utf-8") as fh:
            fh.write(json.dumps(
                {"system": "zzz", "benchmark": "lu", "refs": 1}
            ) + "\n")
        p = SweepProgress(run_dir)
        assert p.done_cells == 2  # the stray (zzz, lu) is off-plan

    def test_recovery_log_is_surfaced(self, tmp_path):
        run_dir = tmp_path / "run"
        run_sweep(run_dir)
        with open(run_dir / RECOVERY_NAME, "a", encoding="utf-8") as fh:
            for kind in ("cell_retry", "cell_retry", "worker_lost"):
                fh.write(json.dumps(
                    {"kind": kind, "detail": f"{kind} detail"}
                ) + "\n")
        p = SweepProgress(run_dir)
        assert p.recovery_counts == {"cell_retry": 2, "worker_lost": 1}
        board = p.render()
        assert "cell_retry=2" in board and "worker_lost=1" in board
        assert "worker_lost detail" in board

    def test_recovery_sink_written_by_real_faulted_sweep(
        self, tmp_path, monkeypatch
    ):
        # a kill-free fault plan (cell faults only) exercises retry in a
        # serial sweep; its recovery actions must stream to recovery.jsonl
        monkeypatch.setenv("REPRO_FAULTS", "seed=3;cell=1.0@1")
        run_dir = tmp_path / "run"
        sweep(["base"], ["lu"], refs=REFS, run_dir=str(run_dir))
        p = SweepProgress(run_dir)
        assert p.complete
        assert sum(p.recovery_counts.values()) >= 1
        kinds = set(p.recovery_counts)
        assert kinds & {"cell_retry", "fault_injected", "cell_recovered"}


class TestWatch:
    def test_single_shot_prints_one_board(self, tmp_path):
        run_dir = tmp_path / "run"
        run_sweep(run_dir)
        out = io.StringIO()
        p = watch(run_dir, out=out)
        assert p.complete
        assert out.getvalue().count("sweep ") == 1

    def test_follow_stops_on_complete(self, tmp_path):
        run_dir = tmp_path / "run"
        run_sweep(run_dir)
        out = io.StringIO()
        p = watch(run_dir, follow=True, interval=0.01, out=out)
        assert p.complete  # returned after the first board: already done

    def test_follow_respects_max_updates(self, tmp_path):
        out = io.StringIO()
        p = watch(
            tmp_path / "empty", follow=True, interval=0.01,
            max_updates=3, out=out,
        )
        assert not p.complete
        assert out.getvalue().count("sweep /") == 3  # three board headers


class TestCheckpointReaders:
    def test_read_run_header_absent_and_corrupt(self, tmp_path):
        assert read_run_header(tmp_path) is None
        (tmp_path / HEADER_NAME).write_text("{corrupt")
        assert read_run_header(tmp_path) is None

    def test_iter_journal_lines_tolerates_everything(self, tmp_path):
        path = tmp_path / "j.jsonl"
        assert list(iter_journal_lines(path)) == []  # missing file
        path.write_text(
            '{"a": 1}\n'
            "\n"              # blank
            "[1, 2, 3]\n"     # not a dict
            "{torn"           # torn tail
        )
        assert list(iter_journal_lines(path)) == [{"a": 1}]
