"""Tests for the machine-wide invariant checker — and, through it, deeper
end-to-end validation of every system (the checker sweeps the full state
after real simulations)."""

from __future__ import annotations

import pytest

from repro.coherence.states import MESIR
from repro.sim.runner import get_trace
from repro.sim.simulator import Simulator
from repro.sim.validate import InvariantViolation, check_machine
from repro.system.builder import build_machine, system_config
from tests.conftest import Harness, addr, tiny_config


class TestDetectsViolations:
    def test_two_dirty_copies(self):
        m = build_machine(system_config("base"))
        m.placement.touch(1, 0)
        m.l1_of(0).insert(64, int(MESIR.M))
        m.l1_of(4).insert(64, int(MESIR.M))
        with pytest.raises(InvariantViolation, match="dirty in nodes"):
            check_machine(m)

    def test_exclusive_with_other_copies(self):
        m = build_machine(system_config("base"))
        m.placement.touch(1, 0)
        m.directory.access(64, 0, True)
        m.directory.access(65, 1, False)
        m.l1_of(0).insert(64, int(MESIR.M))
        m.l1_of(4).insert(64, int(MESIR.S))
        with pytest.raises(InvariantViolation, match="E/M"):
            check_machine(m)

    def test_owner_without_dirty_copy(self):
        m = build_machine(system_config("base"))
        m.placement.touch(1, 0)
        m.directory.access(64, 1, True)  # cluster 1 claims ownership
        with pytest.raises(InvariantViolation, match="owns"):
            check_machine(m)

    def test_remote_dirty_without_ownership(self):
        m = build_machine(system_config("base"))
        m.placement.touch(1, 0)  # home node 0
        m.directory.access(64, 1, False)  # presence only
        m.l1_of(4).insert(64, int(MESIR.M))  # node 1 dirty, unregistered
        with pytest.raises(InvariantViolation, match="without"):
            check_machine(m)

    def test_missing_presence_bit(self):
        m = build_machine(system_config("base"))
        m.placement.touch(1, 0)
        m.l1_of(4).insert(64, int(MESIR.S))  # node 1, no directory trace
        with pytest.raises(InvariantViolation, match="presence"):
            check_machine(m)

    def test_nc_holding_local_block(self):
        m = build_machine(system_config("vb"))
        m.placement.touch(1, 2)
        m.nodes[2].nc.accept_clean_victim(64)
        with pytest.raises(InvariantViolation, match="local block"):
            check_machine(m)

    def test_full_inclusion_hole(self):
        m = build_machine(system_config("ncd"))
        m.placement.touch(1, 1)
        m.directory.access(64, 0, False)
        m.l1_of(0).insert(64, int(MESIR.S))  # L1 copy without NC frame
        with pytest.raises(InvariantViolation, match="full inclusion"):
            check_machine(m)

    def test_clean_machine_passes(self):
        check_machine(build_machine(system_config("vb")))


class TestRealRunsStayClean:
    @pytest.mark.parametrize(
        "system",
        ["base", "nc", "vb", "vp", "ncs", "ncd", "dinf", "ncp5", "vbp5", "vxp5"],
    )
    def test_after_barnes(self, system):
        trace = get_trace("barnes", refs=30_000)
        machine = build_machine(
            system_config(system), dataset_bytes=trace.dataset_bytes
        )
        Simulator(machine).run(trace)
        check_machine(machine)

    @pytest.mark.parametrize("bench", ["radix", "ocean", "lu"])
    def test_vxp_after_each_class(self, bench):
        trace = get_trace(bench, refs=30_000)
        machine = build_machine(
            system_config("vxp5"), dataset_bytes=trace.dataset_bytes
        )
        Simulator(machine).run(trace)
        check_machine(machine)

    def test_scripted_harness_state_validates(self):
        h = Harness(tiny_config("vbp5"))
        for i in range(4):
            h.home(i, i % 2)
        for pid in range(4):
            for page in range(4):
                h.read(pid, addr(page, pid * 7 % 64))
                h.write(pid, addr(page, (pid * 7 + 1) % 64))
        check_machine(h.machine)
