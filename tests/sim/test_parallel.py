"""Tests for the parallel sweep engine, the disk trace cache, the bounded
in-process trace cache, and per-system sweep overrides."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim import runner
from repro.sim.parallel import chunk_cells, plan_cells, throughput_report
from repro.sim.runner import (
    clear_trace_cache,
    get_trace,
    resolve_sweep_configs,
    run_trace,
    sweep,
)
from repro.trace import io as trace_io
from repro.trace.record import TraceSpec
from repro.trace.synthetic import generate_trace

from repro.sim.simulator import Simulator
from repro.system.builder import build_machine, system_config

SYSTEMS = ["base", "vb"]
BENCHES = ["lu", "radix"]
REFS = 8_000


class TestRunStepEquivalence:
    """run()'s inlined fast path is an optimisation of step(), never a
    semantic change: identical counters, reference by reference."""

    @pytest.mark.parametrize("system", ["base", "vb", "vpp5", "ncd", "vxp5"])
    def test_run_matches_step(self, system):
        trace = get_trace("barnes", refs=6_000)
        config = system_config(system)

        fast = Simulator(build_machine(config, dataset_bytes=trace.dataset_bytes))
        fast.run(trace)

        slow = Simulator(build_machine(config, dataset_bytes=trace.dataset_bytes))
        if trace.placement:
            for page, home in trace.placement.items():
                slow._placement.touch(page, home)
        for pid, addr, w in zip(
            trace.pids.tolist(), trace.addrs.tolist(), trace.writes.tolist()
        ):
            slow.step(pid, addr, bool(w))

        assert fast.counters == slow.counters
        assert fast.now == slow.now


class TestParallelEquivalence:
    def test_jobs4_bit_identical_to_serial(self):
        serial = sweep(SYSTEMS, BENCHES, refs=REFS)
        clear_trace_cache()
        parallel = sweep(SYSTEMS, BENCHES, refs=REFS, jobs=4)
        assert list(serial) == list(parallel)  # deterministic merge order
        for key in serial:
            assert serial[key].counters == parallel[key].counters, key

    def test_jobs1_is_serial_path(self):
        a = sweep(SYSTEMS, ["lu"], refs=REFS, jobs=1)
        b = sweep(SYSTEMS, ["lu"], refs=REFS)
        for key in b:
            assert a[key].counters == b[key].counters

    def test_plan_matches_serial_order(self):
        configs = resolve_sweep_configs(SYSTEMS)
        cells = plan_cells(configs, BENCHES, refs=REFS)
        assert [(c.system, c.benchmark) for c in cells] == [
            (s, b) for b in BENCHES for s in SYSTEMS
        ]

    def test_chunks_cover_all_cells(self):
        configs = resolve_sweep_configs(SYSTEMS)
        cells = plan_cells(configs, BENCHES, refs=REFS)
        for jobs in (1, 2, 3, 8):
            chunks = chunk_cells(cells, jobs)
            flat = [c for chunk in chunks for c in chunk]
            assert sorted((c.system, c.benchmark) for c in flat) == sorted(
                (c.system, c.benchmark) for c in cells
            )

    def test_chunks_keep_benchmark_grouped_when_enough(self):
        configs = resolve_sweep_configs(SYSTEMS)
        cells = plan_cells(configs, BENCHES, refs=REFS)
        chunks = chunk_cells(cells, jobs=2)
        for chunk in chunks:
            assert len({c.benchmark for c in chunk}) == 1


class TestDiskTraceCache:
    def test_round_trip_identical_counters(self, tmp_path, monkeypatch):
        monkeypatch.setenv(trace_io.CACHE_ENV, str(tmp_path))
        spec = TraceSpec(benchmark="lu", refs=REFS, seed=1, scale=0.125)
        fresh = generate_trace(spec)
        trace_io.store_cached_trace(spec, fresh)
        cached = trace_io.load_cached_trace(spec)
        assert cached is not None
        config = resolve_sweep_configs(["vb"])["vb"]
        a = run_trace(config, fresh, system_name="vb")
        b = run_trace(config, cached, system_name="vb")
        assert a.counters == b.counters

    def test_get_trace_populates_and_reuses_disk(self, tmp_path, monkeypatch):
        monkeypatch.setenv(trace_io.CACHE_ENV, str(tmp_path))
        clear_trace_cache()
        get_trace("lu", refs=REFS, disk_cache=True)
        files = list(tmp_path.glob("*.npz"))
        assert len(files) == 1
        clear_trace_cache()
        again = get_trace("lu", refs=REFS, disk_cache=True)
        assert list(tmp_path.glob("*.npz")) == files
        assert again.name == "lu" and len(again) >= REFS

    def test_key_distinguishes_specs(self):
        a = trace_io.trace_cache_key(TraceSpec(benchmark="lu", refs=1000))
        b = trace_io.trace_cache_key(TraceSpec(benchmark="lu", refs=2000))
        c = trace_io.trace_cache_key(TraceSpec(benchmark="lu", refs=1000, seed=2))
        assert len({a, b, c}) == 3

    def test_clear_disk_cache(self, tmp_path, monkeypatch):
        monkeypatch.setenv(trace_io.CACHE_ENV, str(tmp_path))
        spec = TraceSpec(benchmark="lu", refs=REFS)
        trace_io.store_cached_trace(spec, generate_trace(spec))
        assert trace_io.clear_disk_trace_cache() == 1
        assert trace_io.load_cached_trace(spec) is None

    def test_corrupt_entry_regenerates(self, tmp_path, monkeypatch):
        monkeypatch.setenv(trace_io.CACHE_ENV, str(tmp_path))
        spec = TraceSpec(benchmark="lu", refs=REFS)
        path = trace_io.trace_cache_path(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz")
        assert trace_io.load_cached_trace(spec) is None
        assert not path.exists()  # the bad entry was dropped


class TestBoundedTraceCache:
    def test_lru_bound_respected(self):
        clear_trace_cache()
        for seed in range(runner.TRACE_CACHE_MAX + 4):
            get_trace("lu", refs=1_000, seed=seed)
        assert len(runner._trace_cache) == runner.TRACE_CACHE_MAX

    def test_lru_evicts_oldest_first(self):
        clear_trace_cache()
        first = get_trace("lu", refs=1_000, seed=0)
        for seed in range(1, runner.TRACE_CACHE_MAX):
            get_trace("lu", refs=1_000, seed=seed)
        # touching the oldest promotes it past the next eviction
        assert get_trace("lu", refs=1_000, seed=0) is first
        get_trace("lu", refs=1_000, seed=runner.TRACE_CACHE_MAX)
        assert get_trace("lu", refs=1_000, seed=0) is first

    def test_clear_still_works(self):
        get_trace("lu", refs=1_000)
        clear_trace_cache()
        assert len(runner._trace_cache) == 0


class TestSweepOverrides:
    def test_shared_overrides_apply_to_all(self):
        out = sweep(SYSTEMS, ["lu"], refs=REFS, cache_assoc=4)
        for r in out.values():
            assert r.config.cache.assoc == 4

    def test_per_system_overrides_scoped(self):
        out = sweep(
            SYSTEMS, ["lu"], refs=REFS, config_overrides={"vb": {"nc_size": 1024}}
        )
        assert out[("vb", "lu")].config.nc.size == 1024
        assert out[("base", "lu")].config.nc.size != 1024

    def test_per_system_layers_over_shared(self):
        out = sweep(
            SYSTEMS,
            ["lu"],
            refs=REFS,
            cache_assoc=4,
            config_overrides={"vb": {"cache_assoc": 1}},
        )
        assert out[("base", "lu")].config.cache.assoc == 4
        assert out[("vb", "lu")].config.cache.assoc == 1

    def test_unknown_shared_override_named(self):
        with pytest.raises(ConfigurationError, match="bogus_knob"):
            sweep(SYSTEMS, ["lu"], refs=REFS, bogus_knob=1)

    def test_unknown_per_system_override_named(self):
        with pytest.raises(ConfigurationError, match="bad_key"):
            sweep(
                SYSTEMS, ["lu"], refs=REFS, config_overrides={"vb": {"bad_key": 1}}
            )

    def test_override_for_absent_system_rejected(self):
        with pytest.raises(ConfigurationError, match="vpp5"):
            sweep(SYSTEMS, ["lu"], refs=REFS, config_overrides={"vpp5": {}})

    def test_validation_is_eager(self):
        # the error must fire before any simulation work happens
        clear_trace_cache()
        with pytest.raises(ConfigurationError):
            sweep(SYSTEMS, ["lu"], refs=REFS, config_overrides={"vb": {"nope": 1}})
        assert len(runner._trace_cache) == 0


class TestThroughputReport:
    def test_report_contains_cells_and_total(self):
        results = sweep(SYSTEMS, ["lu"], refs=REFS)
        report = throughput_report(results, wall_s=1.0, jobs=2)
        for system in SYSTEMS:
            assert system in report
        assert "total" in report and "refs/s" in report
        assert "jobs=2" in report

    def test_refs_per_sec_property(self):
        results = sweep(["base"], ["lu"], refs=REFS)
        r = results[("base", "lu")]
        assert r.refs_per_sec == pytest.approx(r.refs / r.elapsed_s)

    def test_refs_per_sec_zero_without_timing(self):
        results = sweep(["base"], ["lu"], refs=REFS)
        r = results[("base", "lu")]
        r.elapsed_s = 0.0
        assert r.refs_per_sec == 0.0
