"""Scripted protocol scenarios: the MESIR/NC/PC/directory state machine.

Each test drives the simulator through a hand-built reference sequence on
the tiny 2x2 machine and asserts the resulting cache/NC/PC/directory
states and event counters.  These encode the paper's Sec. 3 semantics:
R-state mastership, replacement transactions, victim capture, inclusion
enforcement, page-cache fills/absorption, and miss classification.
"""

from __future__ import annotations


from repro.coherence.states import MESIR, NCState, PCBlockState
from tests.conftest import Harness, addr

# pids: node 0 = {0, 1}, node 1 = {2, 3}


class TestBasicFills:
    def test_local_read_fills_exclusive(self, base_harness):
        h = base_harness
        h.home(0, 0)
        h.read(0, addr(0))
        assert h.l1_state(0, addr(0)) == MESIR.E
        assert h.counters.local_read_misses == 1
        assert h.counters.reads == 1

    def test_remote_read_fills_r_state(self, base_harness):
        h = base_harness
        h.home(0, 1)
        h.read(0, addr(0))
        assert h.l1_state(0, addr(0)) == MESIR.R
        assert h.counters.read_remote == 1
        assert h.counters.remote_necessary == 1

    def test_second_reader_in_node_gets_shared_via_bus(self, base_harness):
        h = base_harness
        h.home(0, 1)
        h.read(0, addr(0))
        h.read(1, addr(0))
        assert h.l1_state(1, addr(0)) == MESIR.S
        assert h.l1_state(0, addr(0)) == MESIR.R  # master unchanged
        assert h.counters.read_cluster_hits == 1
        assert h.counters.read_remote == 1  # no second remote access

    def test_write_miss_fills_modified(self, base_harness):
        h = base_harness
        h.home(0, 1)
        h.write(0, addr(0))
        assert h.l1_state(0, addr(0)) == MESIR.M
        assert h.counters.write_remote == 1

    def test_read_hit_costs_nothing(self, base_harness):
        h = base_harness
        h.home(0, 0)
        h.read(0, addr(0))
        h.read(0, addr(0))
        assert h.counters.l1_read_hits == 1
        assert h.counters.refs == 2

    def test_word_addresses_share_block(self, base_harness):
        h = base_harness
        h.home(0, 1)
        h.read(0, addr(0, 0, 0))
        h.read(0, addr(0, 0, 5))  # another word of the same block
        assert h.counters.l1_read_hits == 1
        assert h.counters.read_remote == 1


class TestUpgradesAndInvalidation:
    def test_silent_e_to_m(self, base_harness):
        h = base_harness
        h.home(0, 0)
        h.read(0, addr(0))
        h.write(0, addr(0))
        assert h.l1_state(0, addr(0)) == MESIR.M
        assert h.counters.local_upgrades == 0  # silent, no bus transaction
        assert h.counters.l1_write_hits == 1

    def test_upgrade_invalidates_remote_sharers(self, base_harness):
        h = base_harness
        h.home(0, 0)
        h.read(2, addr(0))  # node 1 reads (remote for it)
        h.read(0, addr(0))  # home node reads too
        h.write(0, addr(0))  # upgrade
        assert h.l1_state(0, addr(0)) == MESIR.M
        assert h.l1_state(2, addr(0)) is None
        assert h.counters.remote_invalidations >= 1

    def test_upgrade_on_remote_shared_counts_remote(self, base_harness):
        h = base_harness
        h.home(0, 1)
        h.read(0, addr(0))
        h.write(0, addr(0))
        assert h.counters.remote_upgrades == 1
        assert h.l1_state(0, addr(0)) == MESIR.M

    def test_write_invalidates_within_cluster(self, base_harness):
        h = base_harness
        h.home(0, 1)
        h.read(0, addr(0))
        h.read(1, addr(0))
        h.write(1, addr(0))
        assert h.l1_state(0, addr(0)) is None
        assert h.l1_state(1, addr(0)) == MESIR.M

    def test_remote_write_pulls_dirty_copy(self, base_harness):
        h = base_harness
        h.home(0, 0)
        h.write(0, addr(0))  # node 0 dirties (local block)
        h.write(2, addr(0))  # node 1 writes: must flush node 0's M copy
        assert h.l1_state(0, addr(0)) is None
        assert h.l1_state(2, addr(0)) == MESIR.M
        assert h.machine.directory.owner(addr(0) >> 6) == 1

    def test_remote_read_downgrades_dirty_copy(self, base_harness):
        h = base_harness
        h.home(0, 1)
        h.write(0, addr(0))
        h.read(2, addr(0))  # home cluster reads it back
        assert h.l1_state(0, addr(0)) == MESIR.S
        assert h.counters.writebacks_remote == 1  # flush crossed the network
        assert h.machine.directory.owner(addr(0) >> 6) is None

    def test_silent_e_to_m_then_remote_read_snoops_home(self, base_harness):
        h = base_harness
        h.home(0, 0)
        h.read(0, addr(0))   # E
        h.write(0, addr(0))  # silent M
        h.read(2, addr(0))   # remote read must find it via the home bus
        assert h.l1_state(0, addr(0)) == MESIR.S
        assert h.l1_state(2, addr(0)) == MESIR.R

    def test_e_copy_downgraded_by_remote_read(self, base_harness):
        h = base_harness
        h.home(0, 0)
        h.read(0, addr(0))  # E
        h.read(2, addr(0))
        assert h.l1_state(0, addr(0)) == MESIR.S


class TestMissClassification:
    def test_cold_miss_is_necessary(self, base_harness):
        h = base_harness
        h.home(0, 1)
        h.read(0, addr(0))
        assert h.counters.remote_necessary == 1
        assert h.counters.remote_capacity == 0

    def test_refetch_after_silent_eviction_is_capacity(self, make_harness):
        h = make_harness("base")
        h.home(0, 1)
        h.home(1, 1)
        target = addr(0, 0)
        h.read(0, target)
        # evict: 1 KB 2-way = 8 sets; blocks 0 of pages 0 and 1 share set 0
        # only with matching low bits; use same-set blocks of another page
        h.read(0, addr(1, 0))
        h.read(0, addr(1, 8))  # block 8 of page 1: set (64+8)%16... ensure
        # eviction by filling the whole cache
        for b in range(16):
            h.read(0, addr(1, b))
        h.read(0, target)
        assert h.counters.remote_capacity >= 1

    def test_refetch_after_invalidation_is_necessary(self, base_harness):
        h = base_harness
        h.home(0, 1)
        h.read(0, addr(0))
        h.write(2, addr(0))  # home node writes: invalidates node 0
        h.read(0, addr(0))
        assert h.counters.remote_capacity == 0
        assert h.counters.remote_necessary >= 2

    def test_presence_survives_writeback(self, make_harness):
        """R-NUMA semantics: a write-back leaves the presence bit on."""
        h = make_harness("base")
        h.home(0, 1)
        h.write(0, addr(0))
        # force the dirty victim out by filling the set
        for b in (0, 16, 32, 48):
            h.read(0, addr(1, b % 64))
        for b in range(16):
            h.read(0, addr(1, b))
        assert h.l1_state(0, addr(0)) is None
        h.read(0, addr(0))
        assert h.counters.remote_capacity >= 1


class TestVictimCache:
    def _fill_and_evict(self, h: Harness, target: int, pid: int = 0) -> None:
        """Evict ``target`` from pid's cache by filling its set."""
        block_off = (target >> 6) & 63
        for page in (2, 3):
            h.home(page, pid // h.config.procs_per_node)
            h.read(pid, addr(page, block_off))
            h.read(pid, addr(page, (block_off + 16) % 64))

    def test_clean_victim_captured(self, vb_harness):
        h = vb_harness
        h.home(0, 1)
        h.home(2, 0)
        h.home(3, 0)
        target = addr(0)
        h.read(0, target)
        assert h.l1_state(0, target) == MESIR.R
        self._fill_and_evict(h, target)
        assert h.l1_state(0, target) is None
        assert h.nc_state(0, target) == NCState.CLEAN

    def test_nc_hit_swaps_block_back(self, vb_harness):
        h = vb_harness
        h.home(0, 1)
        h.home(2, 0)
        h.home(3, 0)
        target = addr(0)
        h.read(0, target)
        self._fill_and_evict(h, target)
        before = h.counters.read_nc_hits
        h.read(0, target)
        assert h.counters.read_nc_hits == before + 1
        assert h.l1_state(0, target) == MESIR.R  # clean master again
        assert h.nc_state(0, target) is None  # exclusive: left the NC

    def test_dirty_victim_absorbed(self, vb_harness):
        h = vb_harness
        h.home(0, 1)
        h.home(2, 0)
        h.home(3, 0)
        target = addr(0)
        h.write(0, target)
        self._fill_and_evict(h, target)
        assert h.nc_state(0, target) == NCState.DIRTY
        assert h.counters.writebacks_absorbed == 1
        assert h.counters.writebacks_remote == 0

    def test_dirty_nc_hit_returns_modified(self, vb_harness):
        h = vb_harness
        h.home(0, 1)
        h.home(2, 0)
        h.home(3, 0)
        target = addr(0)
        h.write(0, target)
        self._fill_and_evict(h, target)
        h.read(0, target)
        assert h.l1_state(0, target) == MESIR.M  # ownership came back dirty
        assert h.nc_state(0, target) is None

    def test_mastership_transfer_on_r_replacement(self, vb_harness):
        h = vb_harness
        h.home(0, 1)
        h.home(2, 0)
        h.home(3, 0)
        target = addr(0)
        h.read(0, target)   # pid0: R
        h.read(1, target)   # pid1: S
        self._fill_and_evict(h, target, pid=0)
        # pid1's copy inherits mastership instead of the NC capturing it
        assert h.l1_state(1, target) == MESIR.R
        assert h.nc_state(0, target) is None

    def test_local_victims_never_enter_nc(self, vb_harness):
        h = vb_harness
        h.home(0, 0)  # local page
        h.home(2, 0)
        h.home(3, 0)
        target = addr(0)
        h.read(0, target)
        self._fill_and_evict(h, target)
        assert h.nc_state(0, target) is None

    def test_invalidation_removes_nc_copy(self, vb_harness):
        h = vb_harness
        h.home(0, 1)
        h.home(2, 0)
        h.home(3, 0)
        target = addr(0)
        h.read(0, target)
        self._fill_and_evict(h, target)
        assert h.nc_state(0, target) == NCState.CLEAN
        h.write(2, target)  # home node writes
        assert h.nc_state(0, target) is None

    def test_downgrade_writeback_pollutes_victim_nc(self, vb_harness):
        """An M->S bus downgrade allocates an NC frame while L1s hold S."""
        h = vb_harness
        h.home(0, 1)
        target = addr(0)
        h.write(0, target)
        h.read(1, target)  # peer read downgrades pid0's M
        assert h.l1_state(0, target) == MESIR.S
        assert h.l1_state(1, target) == MESIR.S
        assert h.nc_state(0, target) == NCState.DIRTY
        assert h.counters.writebacks_absorbed == 1


class TestDirtyInclusionNC:
    def test_allocates_on_fetch(self, nc_harness):
        h = nc_harness
        h.home(0, 1)
        h.read(0, addr(0))
        assert h.nc_state(0, addr(0)) == NCState.CLEAN

    def test_nc_read_hit_keeps_frame(self, nc_harness):
        h = nc_harness
        h.home(0, 1)
        h.home(2, 0)
        h.home(3, 0)
        target = addr(0)
        h.read(0, target)
        # evict from L1 (fill the set with locals)
        for page in (2, 3):
            h.read(0, addr(page, 0))
            h.read(0, addr(page, 16))
        h.read(0, target)
        assert h.counters.read_nc_hits == 1
        assert h.nc_state(0, target) == NCState.CLEAN  # inclusive: stays
        assert h.l1_state(0, target) == MESIR.S

    def test_nc_eviction_forces_dirty_l1_copy_out(self, make_harness):
        # NC of 256 bytes (4 blocks, 1 set) to force eviction quickly
        h = make_harness("nc", nc_size=256)
        h.home(0, 1)
        target = addr(0)
        h.write(0, target)  # M in L1, frame in NC
        assert h.nc_state(0, target) == NCState.CLEAN  # stale under the M
        for off in (1, 2, 3, 4):  # 4 more remote fetches overflow the NC
            h.read(0, addr(0, off))
        assert h.counters.nc_inclusion_evictions == 1
        assert h.l1_state(0, target) is None  # forced out
        assert h.counters.writebacks_remote == 1  # its data went home

    def test_clean_l1_copy_survives_nc_eviction(self, make_harness):
        h = make_harness("nc", nc_size=256)
        h.home(0, 1)
        target = addr(0)
        h.read(0, target)
        for off in (1, 2, 3, 4):
            h.read(0, addr(0, off))
        assert h.nc_state(0, target) is None  # evicted from NC
        assert h.l1_state(0, target) == MESIR.R  # relaxed inclusion: stays

    def test_dirty_victim_absorbed_into_frame(self, make_harness):
        h = make_harness("nc")
        h.home(0, 1)
        h.home(2, 0)
        h.home(3, 0)
        target = addr(0)
        h.write(0, target)
        for page in (2, 3):
            h.read(0, addr(page, 0))
            h.read(0, addr(page, 16))
        assert h.l1_state(0, target) is None
        assert h.nc_state(0, target) == NCState.DIRTY
        assert h.counters.writebacks_absorbed == 1


class TestFullInclusionNCD:
    def test_nc_eviction_invalidates_all_l1_copies(self, make_harness):
        h = make_harness("ncd", nc_size=256)
        h.home(0, 1)
        target = addr(0)
        h.read(0, target)
        h.read(1, target)
        for off in (1, 2, 3, 4):
            h.read(0, addr(0, off))
        assert h.nc_state(0, target) is None
        assert h.l1_state(0, target) is None
        assert h.l1_state(1, target) is None
        assert h.counters.nc_inclusion_evictions == 2

    def test_is_dram_latency_class(self, make_harness):
        h = make_harness("ncd")
        assert h.machine.nodes[0].nc.is_dram


class TestPageCache:
    def _relocate(self, h: Harness, page: int, home: int = 1, pid: int = 0):
        """Generate capacity misses on `page` until it relocates."""
        h.home(page, home)
        h.home(8, 0)
        h.home(9, 0)
        node = pid // h.config.procs_per_node
        pc = h.machine.nodes[node].pc
        for _ in range(40):
            if page in pc:
                return
            for off in (0, 16):
                h.read(pid, addr(page, off))
                # thrash the set with local pages to force silent eviction
                h.read(pid, addr(8, off))
                h.read(pid, addr(9, off))
                h.read(pid, addr(8, (off + 32) % 64))
                h.read(pid, addr(9, (off + 32) % 64))
        raise AssertionError("page never relocated")

    def test_capacity_misses_trigger_relocation(self, make_harness):
        h = make_harness("p5")  # page cache only, no NC
        self._relocate(h, page=0)
        assert h.counters.pc_relocations >= 1
        assert 0 in h.machine.nodes[0].pc

    def test_pc_hit_after_relocation(self, make_harness):
        h = make_harness("p5")
        self._relocate(h, page=0)
        # force another eviction of block 0, then re-read: PC hit
        before = h.counters.read_pc_hits
        for off in (0, 16):
            h.read(0, addr(8, off))
            h.read(0, addr(9, off))
            h.read(0, addr(8, (off + 32) % 64))
            h.read(0, addr(9, (off + 32) % 64))
        h.read(0, addr(0, 0))
        assert h.counters.read_pc_hits > before or h.counters.l1_read_hits

    def test_dirty_victim_absorbed_by_pc(self, make_harness):
        h = make_harness("p5")
        self._relocate(h, page=0)
        h.write(0, addr(0, 0))
        wb_before = h.counters.writebacks_remote
        # evict the dirty block
        for off in (0,):
            h.read(0, addr(8, off))
            h.read(0, addr(9, off))
        assert h.counters.writebacks_remote == wb_before
        assert h.pc_state(0, addr(0, 0)) == PCBlockState.DIRTY

    def test_invalidation_hits_pc_block(self, make_harness):
        h = make_harness("p5")
        self._relocate(h, page=0)
        h.read(0, addr(0, 0))  # ensure block valid in PC or L1
        h.write(2, addr(0, 0))  # home node writes
        assert h.pc_state(0, addr(0, 0)) == PCBlockState.INVALID

    def test_write_after_relocation_owns_locally(self, make_harness):
        h = make_harness("p5")
        self._relocate(h, page=0)
        h.write(0, addr(0, 0))
        assert h.l1_state(0, addr(0, 0)) == MESIR.M
        assert h.pc_state(0, addr(0, 0)) == PCBlockState.INVALID


class TestCounterConsistency:
    def test_counters_add_up_after_mixed_run(self, make_harness):
        import numpy as np

        h = make_harness("vbp5")
        rng = np.random.default_rng(7)
        for i in range(4):
            h.home(i, i % 2)
        for _ in range(3000):
            pid = int(rng.integers(0, 4))
            page = int(rng.integers(0, 4))
            off = int(rng.integers(0, 64))
            if rng.random() < 0.3:
                h.write(pid, addr(page, off))
            else:
                h.read(pid, addr(page, off))
        h.counters.check()

    def test_single_dirty_copy_invariant_sampled(self, make_harness):
        import numpy as np

        h = make_harness("ncp5")
        rng = np.random.default_rng(11)
        for i in range(6):
            h.home(i, i % 2)
        blocks = [(p, b) for p in range(6) for b in range(0, 64, 16)]
        for step in range(2000):
            pid = int(rng.integers(0, 4))
            page, off = blocks[int(rng.integers(0, len(blocks)))]
            if rng.random() < 0.4:
                h.write(pid, addr(page, off))
            else:
                h.read(pid, addr(page, off))
            if step % 100 == 0:
                for page, off in blocks:
                    block = (page * 4096 + off * 64) >> 6
                    assert h.machine.dirty_copies_of(block) <= 1
