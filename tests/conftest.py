"""Shared fixtures and helpers for the repro test suite.

The protocol tests drive :class:`repro.sim.simulator.Simulator` directly
through scripted reference sequences on a small machine (2 nodes x 2
processors, 1 KB 2-way caches), which keeps scenarios readable: a 1 KB
cache has 8 sets, so eviction patterns are easy to construct by hand.
"""

from __future__ import annotations

import pytest

from repro.params import SystemConfig
from repro.sim.simulator import Simulator
from repro.system.builder import build_machine, system_config

PAGE = 4096
BLOCK = 64


def addr(page: int, block_off: int = 0, word: int = 0) -> int:
    """Byte address of word ``word`` of block ``block_off`` of ``page``."""
    return page * PAGE + block_off * BLOCK + word * 4


class Harness:
    """A tiny machine plus scripted access helpers."""

    def __init__(self, config: SystemConfig, dataset_bytes: int = 1 << 22):
        self.config = config
        self.machine = build_machine(config, dataset_bytes=dataset_bytes)
        self.sim = Simulator(self.machine)

    # -- direct protocol drivers -------------------------------------

    def home(self, page: int, node: int) -> None:
        """Pin a page's home node (as first-touch would)."""
        self.machine.placement.touch(page, node)

    def read(self, pid: int, a: int) -> None:
        self.sim.step(pid, a, False)

    def write(self, pid: int, a: int) -> None:
        self.sim.step(pid, a, True)

    # -- state inspection ----------------------------------------------

    def l1(self, pid: int):
        return self.machine.l1_of(pid)

    def l1_state(self, pid: int, a: int):
        line = self.machine.l1_of(pid).peek(a >> 6)
        return None if line is None else line.state

    def node(self, idx: int):
        return self.machine.nodes[idx]

    def nc_state(self, node: int, a: int):
        return self.machine.nodes[node].nc.probe(a >> 6)

    def pc_state(self, node: int, a: int):
        pc = self.machine.nodes[node].pc
        if pc is None:
            return None
        block = a >> 6
        return pc.block_state(block >> 6, block & 63)

    @property
    def counters(self):
        return self.sim.counters


def tiny_config(system: str = "base", **overrides) -> SystemConfig:
    """A 2-node x 2-proc machine with 1 KB 2-way caches and a 1 KB NC."""
    defaults = dict(
        n_nodes=2,
        procs_per_node=2,
        cache_size=1024,
        nc_size=1024,
    )
    defaults.update(overrides)
    return system_config(system, **defaults)


@pytest.fixture
def base_harness() -> Harness:
    return Harness(tiny_config("base"))


@pytest.fixture
def vb_harness() -> Harness:
    return Harness(tiny_config("vb"))


@pytest.fixture
def nc_harness() -> Harness:
    return Harness(tiny_config("nc"))


@pytest.fixture
def make_harness():
    def _make(system: str = "base", dataset_bytes: int = 1 << 22, **overrides):
        return Harness(tiny_config(system, **overrides), dataset_bytes)

    return _make
