"""Unit tests for aggregation helpers and report formatting."""

from __future__ import annotations

import pytest

from repro.analysis.metrics import geometric_mean, normalize_map, stacked_miss_bars
from repro.analysis.report import format_grid, format_stacked_bars
from repro.sim.results import SimulationResult
from repro.stats import Counters
from repro.system.builder import system_config


def result(system, bench, read_remote=10, relocations=0):
    c = Counters()
    c.reads = 100
    c.read_remote = read_remote
    c.l1_read_hits = 100 - read_remote
    c.pc_relocations = relocations
    return SimulationResult(system, bench, system_config(system), c, refs=100)


class TestGeometricMean:
    def test_basic(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)

    def test_empty_and_nonpositive(self):
        assert geometric_mean([]) == 0.0
        assert geometric_mean([1.0, 0.0]) == 0.0


class TestNormalizeMap:
    def test_stall_normalisation(self):
        results = {
            ("dinf", "lu"): result("dinf", "lu", read_remote=10),
            ("vb", "lu"): result("vb", "lu", read_remote=5),
        }
        norm = normalize_map(results, "dinf", "stall")
        assert norm[("dinf", "lu")] == pytest.approx(1.0)
        # vb: 5*30 vs dinf: 10*33
        assert norm[("vb", "lu")] == pytest.approx(150 / 330)

    def test_traffic_normalisation(self):
        results = {
            ("dinf", "lu"): result("dinf", "lu", read_remote=10),
            ("vb", "lu"): result("vb", "lu", read_remote=5),
        }
        norm = normalize_map(results, "dinf", "traffic")
        assert norm[("vb", "lu")] == pytest.approx(0.5)

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            normalize_map({("dinf", "lu"): result("dinf", "lu")}, "dinf", "area")


class TestStackedBars:
    def test_components(self):
        r = result("ncp5", "lu", read_remote=10, relocations=2)
        bars = stacked_miss_bars(r)
        assert bars["read"] == pytest.approx(10.0)
        assert bars["write"] == 0.0
        assert bars["relocation"] == pytest.approx(15.0)  # 2 x 7.5 / 100


class TestFormatters:
    def test_grid_contains_rows_and_cols(self):
        txt = format_grid("T", ["r1", "r2"], ["c1"], lambda r, c: 1.5)
        assert "T" in txt and "r1" in txt and "c1" in txt and "1.50" in txt

    def test_grid_none_renders_dash(self):
        txt = format_grid("T", ["r"], ["c"], lambda r, c: None)
        assert "-" in txt.splitlines()[-1]

    def test_stacked_bars_renders_components(self):
        stacks = {("r", "c"): {"read": 1.0, "write": 2.0, "relocation": 3.0}}
        txt = format_stacked_bars("T", ["r"], ["c"], stacks)
        assert "1.00r+2.00w+3.00p" in txt

    def test_stacked_bars_missing_cell(self):
        txt = format_stacked_bars("T", ["r"], ["c"], {})
        assert "-" in txt.splitlines()[-2]


class TestFormatStallBreakdown:
    def test_cycles_and_percentages(self):
        from repro.analysis.report import format_stall_breakdown

        txt = format_stall_breakdown(
            "T", ["vb"],
            {"vb": {"cluster_hit": 100.0, "nc_hit": 0.0, "pc_hit": 0.0,
                    "remote_miss": 900.0, "relocation": 0.0}},
        )
        row = next(ln for ln in txt.splitlines() if ln.startswith("vb"))
        assert "100(10%)" in row and "900(90%)" in row
        assert "1,000" in row  # the total column, thousands-grouped

    def test_missing_row_renders_dashes(self):
        from repro.analysis.report import format_stall_breakdown

        txt = format_stall_breakdown("T", ["ghost"], {})
        row = next(ln for ln in txt.splitlines() if ln.startswith("ghost"))
        assert row.count("-") >= 6  # five components + total

    def test_zero_total_does_not_divide(self):
        from repro.analysis.report import format_stall_breakdown

        txt = format_stall_breakdown(
            "T", ["p"], {"p": {c: 0.0 for c in (
                "cluster_hit", "nc_hit", "pc_hit", "remote_miss", "relocation"
            )}},
        )
        assert "(0%)" in txt
