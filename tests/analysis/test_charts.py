"""Tests for the terminal bar-chart renderers."""

from __future__ import annotations

from repro.analysis.charts import bar_chart, stacked_chart


class TestBarChart:
    def test_contains_all_labels_and_values(self):
        txt = bar_chart(
            "T",
            groups=["lu", "fft"],
            series=["base", "vb"],
            values={
                ("base", "lu"): 2.0,
                ("vb", "lu"): 1.0,
                ("base", "fft"): 1.5,
                ("vb", "fft"): 1.5,
            },
        )
        for token in ("T", "lu", "fft", "base", "vb", "2.00", "1.00"):
            assert token in txt

    def test_bars_proportional(self):
        txt = bar_chart(
            "T", ["g"], ["a", "b"],
            {("a", "g"): 4.0, ("b", "g"): 2.0},
            width=20,
        )
        line_a = next(ln for ln in txt.splitlines() if " a " in ln)
        line_b = next(ln for ln in txt.splitlines() if " b " in ln)
        assert line_a.count("#") == 2 * line_b.count("#")

    def test_reference_ruler(self):
        txt = bar_chart(
            "T", ["g"], ["a"], {("a", "g"): 0.5},
            width=20, reference=1.0,
        )
        assert "|" in txt.splitlines()[1][14:]  # the ruler past the bar
        assert "marks 1.00" in txt

    def test_zero_and_missing_values(self):
        txt = bar_chart("T", ["g"], ["a", "b"], {("a", "g"): 0.0})
        assert "0.00" in txt
        assert " b " not in txt  # missing series is skipped

    def test_handles_all_zero(self):
        txt = bar_chart("T", ["g"], ["a"], {("a", "g"): 0.0})
        assert "T" in txt


class TestStackedChart:
    def test_components_rendered_with_distinct_fills(self):
        txt = stacked_chart(
            "T", ["radix"], ["ncp5"],
            {("ncp5", "radix"): {"read": 4.0, "write": 10.0, "relocation": 5.0}},
            width=19,
        )
        row = next(ln for ln in txt.splitlines() if "ncp5" in ln)
        assert "#" in row and "=" in row and "%" in row
        assert "19.00" in row

    def test_scale_shared_across_groups(self):
        txt = stacked_chart(
            "T", ["a", "b"], ["s"],
            {
                ("s", "a"): {"read": 10.0},
                ("s", "b"): {"read": 5.0},
            },
            width=10,
        )
        rows = [ln for ln in txt.splitlines() if " s " in ln]
        assert rows[0].count("#") == 10
        assert rows[1].count("#") == 5


class TestStallComponentChart:
    def test_five_fills_in_eq1_order(self):
        from repro.analysis.charts import stall_component_chart

        txt = stall_component_chart(
            "T", ["radix"], ["vxp5"],
            {("vxp5", "radix"): {
                "cluster_hit": 10.0, "nc_hit": 10.0, "pc_hit": 10.0,
                "remote_miss": 10.0, "relocation": 10.0,
            }},
            width=50,
        )
        row = next(ln for ln in txt.splitlines() if "vxp5" in ln)
        bar = row.split("|")[1]
        # fills appear left-to-right in Eq. 1 order
        assert bar.index("c") < bar.index("#") < bar.index("=")
        assert bar.index("=") < bar.index("@") < bar.index("%")
        assert "50" in row  # the total
        assert "remote miss" in txt  # the legend

    def test_scale_shared_across_systems(self):
        from repro.analysis.charts import stall_component_chart

        txt = stall_component_chart(
            "T", ["lu"], ["a", "b"],
            {
                ("a", "lu"): {"remote_miss": 100.0},
                ("b", "lu"): {"remote_miss": 50.0},
            },
            width=10,
        )
        rows = [ln for ln in txt.splitlines() if "@" in ln and "|" in ln]
        assert rows[0].count("@") == 10 and rows[1].count("@") == 5
