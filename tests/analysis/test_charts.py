"""Tests for the terminal bar-chart renderers."""

from __future__ import annotations

from repro.analysis.charts import bar_chart, stacked_chart


class TestBarChart:
    def test_contains_all_labels_and_values(self):
        txt = bar_chart(
            "T",
            groups=["lu", "fft"],
            series=["base", "vb"],
            values={
                ("base", "lu"): 2.0,
                ("vb", "lu"): 1.0,
                ("base", "fft"): 1.5,
                ("vb", "fft"): 1.5,
            },
        )
        for token in ("T", "lu", "fft", "base", "vb", "2.00", "1.00"):
            assert token in txt

    def test_bars_proportional(self):
        txt = bar_chart(
            "T", ["g"], ["a", "b"],
            {("a", "g"): 4.0, ("b", "g"): 2.0},
            width=20,
        )
        line_a = next(ln for ln in txt.splitlines() if " a " in ln)
        line_b = next(ln for ln in txt.splitlines() if " b " in ln)
        assert line_a.count("#") == 2 * line_b.count("#")

    def test_reference_ruler(self):
        txt = bar_chart(
            "T", ["g"], ["a"], {("a", "g"): 0.5},
            width=20, reference=1.0,
        )
        assert "|" in txt.splitlines()[1][14:]  # the ruler past the bar
        assert "marks 1.00" in txt

    def test_zero_and_missing_values(self):
        txt = bar_chart("T", ["g"], ["a", "b"], {("a", "g"): 0.0})
        assert "0.00" in txt
        assert " b " not in txt  # missing series is skipped

    def test_handles_all_zero(self):
        txt = bar_chart("T", ["g"], ["a"], {("a", "g"): 0.0})
        assert "T" in txt


class TestStackedChart:
    def test_components_rendered_with_distinct_fills(self):
        txt = stacked_chart(
            "T", ["radix"], ["ncp5"],
            {("ncp5", "radix"): {"read": 4.0, "write": 10.0, "relocation": 5.0}},
            width=19,
        )
        row = next(ln for ln in txt.splitlines() if "ncp5" in ln)
        assert "#" in row and "=" in row and "%" in row
        assert "19.00" in row

    def test_scale_shared_across_groups(self):
        txt = stacked_chart(
            "T", ["a", "b"], ["s"],
            {
                ("s", "a"): {"read": 10.0},
                ("s", "b"): {"read": 5.0},
            },
            width=10,
        )
        rows = [ln for ln in txt.splitlines() if " s " in ln]
        assert rows[0].count("#") == 10
        assert rows[1].count("#") == 5
