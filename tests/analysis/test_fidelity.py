"""Tests for the paper-fidelity layer: pinned baseline data, deviation
math, report rendering, and the ``repro report`` CLI."""

from __future__ import annotations

import importlib.util
import json
import math
from pathlib import Path

import pytest

from repro.analysis import baseline_data
from repro.analysis.baseline_data import (
    BASELINE,
    BASELINE_COLUMNS,
    BASELINE_METRIC,
    BASELINE_TITLES,
)
from repro.analysis.fidelity import (
    REPORT_FIGURES,
    compare_figure,
    render_figure_comparison,
    render_report,
    report_summary_dict,
)
from repro.analysis.report import format_comparison_grid

REPO = Path(__file__).resolve().parent.parent.parent


class TestBaselineData:
    def test_all_nine_figures_present(self):
        assert REPORT_FIGURES == tuple(f"fig{n:02d}" for n in range(3, 12))
        for fig in REPORT_FIGURES:
            assert fig in BASELINE_TITLES and fig in BASELINE_METRIC
            assert fig in BASELINE_COLUMNS

    def test_full_cell_count(self):
        # 9 figures over 8 benchmarks: 6+2+2+2+12+4+5+5+3 = 41 columns
        assert sum(len(v) for v in BASELINE.values()) == 400

    def test_cells_match_declared_columns(self):
        for fig, cells in BASELINE.items():
            cols = set(BASELINE_COLUMNS[fig])
            benches = {bench for _, bench in cells}
            assert {col for col, _ in cells} == cols
            # a full matrix: every column seen for every benchmark
            assert len(cells) == len(cols) * len(benches)

    def test_values_are_finite_and_positive(self):
        for cells in BASELINE.values():
            for value in cells.values():
                assert math.isfinite(value) and value > 0.0

    def test_generator_is_in_sync_with_checked_in_module(self, tmp_path):
        """Re-running scripts/extract_baseline.py must reproduce the
        checked-in baseline_data.py byte for byte."""
        spec = importlib.util.spec_from_file_location(
            "extract_baseline", REPO / "scripts" / "extract_baseline.py"
        )
        mod = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(mod)
        mod.TARGET = tmp_path / "baseline_data.py"
        mod.REPO = tmp_path  # keeps the script's summary print relative
        mod.main()
        checked_in = Path(baseline_data.__file__).read_text(encoding="utf-8")
        assert mod.TARGET.read_text(encoding="utf-8") == checked_in


def _figure_fixture(monkeypatch, cells, columns=("colA", "colB")):
    """Install a tiny synthetic figure so tests don't simulate anything."""
    monkeypatch.setitem(BASELINE, "figtest", cells)
    monkeypatch.setitem(BASELINE_TITLES, "figtest", "synthetic test figure")
    monkeypatch.setitem(BASELINE_METRIC, "figtest", "test_metric")
    monkeypatch.setitem(BASELINE_COLUMNS, "figtest", columns)


class TestCompareFigure:
    def test_identical_data_has_zero_deviation(self, monkeypatch):
        cells = {("colA", "lu"): 4.0, ("colB", "lu"): 2.0}
        _figure_fixture(monkeypatch, cells)
        comp = compare_figure("figtest", dict(cells))
        assert comp.ok and not comp.flagged
        assert comp.max_abs_deviation_pct == 0.0
        assert len(comp.cells) == 2

    def test_deviation_math_and_flagging(self, monkeypatch):
        _figure_fixture(monkeypatch, {("colA", "lu"): 4.0})
        comp = compare_figure("figtest", {("colA", "lu"): 5.0}, tolerance_pct=10.0)
        (cell,) = comp.cells
        assert cell.deviation_pct == pytest.approx(25.0)
        assert comp.flagged == [cell]
        # a deviation is informative, not structural
        assert comp.ok

    def test_within_tolerance_not_flagged(self, monkeypatch):
        _figure_fixture(monkeypatch, {("colA", "lu"): 100.0})
        comp = compare_figure("figtest", {("colA", "lu"): 104.0}, tolerance_pct=5.0)
        assert not comp.flagged

    def test_missing_cell_is_structural(self, monkeypatch):
        _figure_fixture(monkeypatch, {("colA", "lu"): 4.0, ("colB", "lu"): 2.0})
        comp = compare_figure("figtest", {("colA", "lu"): 4.0})
        assert not comp.ok
        assert comp.missing == [("colB", "lu")]
        assert any("colB" in p for p in comp.structural_problems)

    def test_non_finite_value_is_structural(self, monkeypatch):
        _figure_fixture(monkeypatch, {("colA", "lu"): 4.0})
        comp = compare_figure("figtest", {("colA", "lu"): float("nan")})
        assert not comp.ok and comp.non_finite == [("colA", "lu")]

    def test_unexpected_cell_is_structural(self, monkeypatch):
        _figure_fixture(monkeypatch, {("colA", "lu"): 4.0})
        comp = compare_figure(
            "figtest", {("colA", "lu"): 4.0, ("ghost", "lu"): 1.0}
        )
        assert not comp.ok and comp.unexpected == [("ghost", "lu")]

    def test_zero_baseline_guarded(self, monkeypatch):
        _figure_fixture(monkeypatch, {("colA", "lu"): 0.0})
        comp = compare_figure("figtest", {("colA", "lu"): 0.0})
        (cell,) = comp.cells
        assert cell.deviation_pct is None and cell.abs_deviation_pct == 0.0

    def test_unknown_figure_raises(self):
        with pytest.raises(KeyError, match="fig99"):
            compare_figure("fig99", {})

    def test_real_figure_perfect_match(self):
        # the pinned data compared against itself: all-zero deviation
        comp = compare_figure("fig09", dict(BASELINE["fig09"]))
        assert comp.ok and comp.max_abs_deviation_pct == 0.0
        assert len(comp.cells) == len(BASELINE["fig09"])


class TestRendering:
    def test_comparison_grid_marks_absent_cells(self):
        out = format_comparison_grid(
            "t", ["r1"], ["c1", "c2"],
            lambda r, c: "1.00 (+0.0%)" if c == "c1" else None,
        )
        assert "1.00 (+0.0%)" in out
        assert out.splitlines()[-1].rstrip().endswith("-")

    def test_figure_table_shows_deviation(self, monkeypatch):
        _figure_fixture(monkeypatch, {("colA", "lu"): 4.0}, columns=("colA",))
        comp = compare_figure("figtest", {("colA", "lu"): 5.0})
        text = render_figure_comparison(comp)
        assert "5.00 (+25.0%)" in text
        assert "1 beyond" in text and "STRUCTURAL" not in text

    def test_structural_problems_rendered(self, monkeypatch):
        _figure_fixture(monkeypatch, {("colA", "lu"): 4.0}, columns=("colA",))
        comp = compare_figure("figtest", {})
        assert "STRUCTURAL" in render_figure_comparison(comp)

    def test_full_report_summary_line(self, monkeypatch):
        _figure_fixture(monkeypatch, {("colA", "lu"): 4.0}, columns=("colA",))
        comp = compare_figure("figtest", {("colA", "lu"): 4.0})
        text = render_report([comp], refs=2_000, seed=1)
        assert "paper-fidelity report" in text
        assert "figtest" in text and "ok" in text
        # a sub-baseline trace length is called out in the header
        assert "trace length differs" in text

    def test_summary_dict_shape(self, monkeypatch):
        _figure_fixture(monkeypatch, {("colA", "lu"): 4.0}, columns=("colA",))
        comp = compare_figure("figtest", {("colA", "lu"): 6.0}, tolerance_pct=5.0)
        d = report_summary_dict([comp])
        entry = d["figtest"]
        assert entry["cells"] == 1 and entry["flagged"] == 1
        assert entry["max_abs_deviation_pct"] == pytest.approx(50.0)
        assert entry["structural_problems"] == []
        json.dumps(d)  # manifest-embeddable


class TestReportCLI:
    def test_report_check_on_tiny_run(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "fidelity.txt"
        rc = main([
            "report", "--figures", "fig04", "--refs", "600",
            "--check", "--out", str(out),
        ])
        assert rc == 0
        assert "check ok" in capsys.readouterr().out
        assert "paper-fidelity report" in out.read_text(encoding="utf-8")
        manifest = json.loads(
            (tmp_path / "report-manifest.json").read_text(encoding="utf-8")
        )
        assert manifest["kind"] == "report"
        assert manifest["fidelity"]["fig04"]["structural_problems"] == []
        assert len(manifest["cells"]) == 16  # 2 systems x 8 benchmarks

    def test_report_rejects_unknown_figure(self):
        from repro.cli import main

        assert main(["report", "--figures", "fig99"]) == 2
