"""Paper-shape assertions: the qualitative results the reproduction claims.

These run at the default experiment fidelity for a subset of benchmarks
(kept to the most load-bearing claims so the suite stays fast), mirroring
the expected-shape list in DESIGN.md / EXPERIMENTS.md.
"""

from __future__ import annotations

import pytest

from repro.sim.runner import simulate

REFS = 400_000


@pytest.fixture(scope="module")
def res():
    cache = {}

    def get(system, bench):
        key = (system, bench)
        if key not in cache:
            cache[key] = simulate(system, bench, refs=REFS)
        return cache[key]

    return get


class TestFig3Shapes:
    def test_small_victim_nc_substitutes_for_associativity(self, res):
        """A 1 KB victim NC lifts 2-way caches toward 4-way miss ratios."""
        two_way = simulate("base", "barnes", refs=REFS, cache_assoc=2)
        four_way = simulate("base", "barnes", refs=REFS, cache_assoc=4)
        with_vc = simulate("vb", "barnes", refs=REFS, cache_assoc=2, nc_size=1024)
        assert four_way.miss_ratio <= two_way.miss_ratio
        assert with_vc.miss_ratio <= two_way.miss_ratio
        gap = two_way.miss_ratio - four_way.miss_ratio
        closed = two_way.miss_ratio - with_vc.miss_ratio
        assert closed >= 0.3 * gap or gap < 0.1

    def test_16k_vc_catches_capacity_misses_too(self, res):
        small = simulate("vb", "barnes", refs=REFS, nc_size=1024)
        large = res("vb", "barnes")
        assert large.miss_ratio < small.miss_ratio

    def test_radix_gain_is_on_writes(self, res):
        base, vb = res("base", "radix"), res("vb", "radix")
        write_gain = base.write_miss_ratio - vb.write_miss_ratio
        read_gain = base.read_miss_ratio - vb.read_miss_ratio
        assert write_gain > read_gain


class TestFig4Shapes:
    @pytest.mark.parametrize("bench", ["barnes", "radix", "raytrace", "lu"])
    def test_victim_beats_dirty_inclusion(self, res, bench):
        assert res("vb", bench).miss_ratio <= res("nc", bench).miss_ratio + 1e-9

    def test_dirty_inclusion_pathology_on_radix(self, res):
        """`nc` caps the cluster's dirty capacity: misses and write-backs blow up."""
        nc, vb, base = res("nc", "radix"), res("vb", "radix"), res("base", "radix")
        assert nc.miss_ratio > 2 * vb.miss_ratio
        assert nc.miss_ratio > base.miss_ratio  # worse than no NC at all
        assert nc.counters.nc_inclusion_evictions > 0


class TestFig5Shapes:
    def test_page_indexing_hurts_lu(self, res):
        assert res("vp", "lu").miss_ratio > res("vb", "lu").miss_ratio

    def test_page_indexing_helps_or_matches_radix(self, res):
        vp, vb = res("vp", "radix"), res("vb", "radix")
        assert vp.miss_ratio <= vb.miss_ratio * 1.15


class TestFig9Shapes:
    def test_base_beats_infinite_dram_nc_for_fft(self, res):
        """The paper's headline: a slow NC can be worse than none."""
        base, dinf = res("base", "fft"), res("dinf", "fft")
        assert base.remote_read_stall < dinf.remote_read_stall

    def test_ncs_is_the_floor(self, res):
        for bench in ("barnes", "fft", "lu", "radix"):
            ncs = res("ncs", bench)
            for system in ("base", "ncd", "dinf"):
                assert ncs.remote_read_stall <= res(system, bench).remote_read_stall

    @pytest.mark.parametrize("bench", ["lu", "ocean"])
    def test_pc_systems_beat_ncd_for_regular_apps(self, res, bench):
        ncd = res("ncd", bench)
        assert res("vbp", bench).remote_read_stall < ncd.remote_read_stall
        assert res("ncp", bench).remote_read_stall < ncd.remote_read_stall

    @pytest.mark.parametrize("bench", ["fmm", "raytrace"])
    def test_ncd_beats_pc_systems_for_irregular_apps(self, res, bench):
        ncd = res("ncd", bench)
        assert res("ncp", bench).remote_read_stall > ncd.remote_read_stall
        assert res("vbp", bench).remote_read_stall > ncd.remote_read_stall

    @pytest.mark.parametrize("bench", ["barnes", "radix", "raytrace"])
    def test_victim_pc_beats_rnuma_at_small_pc(self, res, bench):
        assert (
            res("vbp5", bench).remote_read_stall
            <= res("ncp5", bench).remote_read_stall + 1e-9
        )


class TestFig10Shapes:
    def test_victim_slashes_radix_traffic_vs_rnuma(self, res):
        assert res("vbp5", "radix").traffic_blocks < 0.7 * res(
            "ncp5", "radix"
        ).traffic_blocks

    def test_pc_reduces_radix_traffic_vs_base(self, res):
        assert res("vbp5", "radix").traffic_blocks < res("base", "radix").traffic_blocks

    def test_base_traffic_is_the_ceiling_for_lu(self, res):
        assert res("base", "lu").traffic_blocks > res("vb", "lu").traffic_blocks


class TestFig6Shapes:
    def test_adaptive_threshold_cuts_radix_relocations(self):
        from repro.params import ThresholdPolicy

        fixed = simulate(
            "ncp5", "radix", refs=REFS, threshold_policy=ThresholdPolicy.FIXED
        )
        adaptive = simulate(
            "ncp5", "radix", refs=REFS, threshold_policy=ThresholdPolicy.ADAPTIVE
        )
        assert adaptive.counters.pc_relocations < fixed.counters.pc_relocations
