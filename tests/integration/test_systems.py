"""Integration: every named system runs every benchmark cleanly.

Runs each (system, benchmark) pair at moderate trace length; the
simulator's internal ProtocolError assertions plus Counters.check() make
these strong end-to-end coherence tests, not just smoke tests.
"""

from __future__ import annotations

import pytest

from repro.sim.runner import simulate
from repro.system.builder import SYSTEM_NAMES
from repro.trace.synthetic import BENCHMARK_NAMES

REFS = 40_000

ALL_SYSTEMS = [n if n != "p" else "p5" for n in SYSTEM_NAMES] + [
    "ncp5",
    "vbp5",
    "vpp5",
    "vxp5",
    "ncp9",
]


@pytest.mark.parametrize("system", ALL_SYSTEMS)
def test_system_runs_barnes(system):
    r = simulate(system, "barnes", refs=REFS)
    r.counters.check()
    assert r.counters.refs > 0


@pytest.mark.parametrize("bench", BENCHMARK_NAMES)
def test_vxp_runs_every_benchmark(bench):
    """vxp exercises the most machinery (victim NC + NC-set counters + PC)."""
    r = simulate("vxp5", bench, refs=REFS)
    r.counters.check()


@pytest.mark.parametrize("bench", BENCHMARK_NAMES)
def test_ncd_runs_every_benchmark(bench):
    """Full inclusion is the easiest policy to break."""
    r = simulate("ncd", bench, refs=REFS)
    r.counters.check()


@pytest.mark.parametrize("bench", BENCHMARK_NAMES)
def test_ncp_runs_every_benchmark(bench):
    r = simulate("ncp5", bench, refs=REFS)
    r.counters.check()


class TestCrossSystemInvariants:
    """Relations that must hold regardless of workload details."""

    @pytest.mark.parametrize("bench", BENCHMARK_NAMES)
    def test_infinite_ncs_floor(self, bench):
        """No finite-NC system can miss less than the infinite NC."""
        ncs = simulate("ncs", bench, refs=REFS)
        for system in ("base", "nc", "vb", "vp"):
            r = simulate(system, bench, refs=REFS)
            assert r.miss_ratio >= ncs.miss_ratio - 1e-9

    @pytest.mark.parametrize("bench", BENCHMARK_NAMES)
    def test_victim_nc_never_hurts(self, bench):
        """No inclusion => vb can never miss more than base (Sec. 3.1)."""
        base = simulate("base", bench, refs=REFS)
        vb = simulate("vb", bench, refs=REFS)
        assert vb.miss_ratio <= base.miss_ratio + 1e-9
        vp = simulate("vp", bench, refs=REFS)
        assert vp.miss_ratio <= base.miss_ratio + 1e-9

    @pytest.mark.parametrize("bench", BENCHMARK_NAMES)
    def test_identical_misses_ncs_vs_dinf(self, bench):
        """Infinite SRAM and DRAM NCs differ only in latency, not misses."""
        a = simulate("ncs", bench, refs=REFS)
        b = simulate("dinf", bench, refs=REFS)
        assert a.miss_ratio == pytest.approx(b.miss_ratio)
        assert a.remote_read_stall < b.remote_read_stall or a.remote_read_stall == 0

    @pytest.mark.parametrize("bench", BENCHMARK_NAMES)
    def test_refs_conserved_across_systems(self, bench):
        refs = {
            simulate(s, bench, refs=REFS).counters.refs
            for s in ("base", "vb", "ncd", "vxp5")
        }
        assert len(refs) == 1
