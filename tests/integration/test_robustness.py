"""Robustness: the qualitative relations hold across seeds and scales.

A reproduction whose shapes depend on one lucky seed is not a
reproduction; these re-check the cheapest load-bearing orderings at
other seeds and a different dataset scale.
"""

from __future__ import annotations

import pytest

from repro.sim.runner import simulate

REFS = 120_000


@pytest.mark.parametrize("seed", [2, 3])
class TestSeedRobustness:
    def test_victim_beats_inclusion_on_radix(self, seed):
        nc = simulate("nc", "radix", refs=REFS, seed=seed)
        vb = simulate("vb", "radix", refs=REFS, seed=seed)
        assert vb.miss_ratio < nc.miss_ratio

    def test_victim_never_hurts_barnes(self, seed):
        base = simulate("base", "barnes", refs=REFS, seed=seed)
        vb = simulate("vb", "barnes", refs=REFS, seed=seed)
        assert vb.miss_ratio <= base.miss_ratio + 1e-9

    def test_page_indexing_hurts_lu(self, seed):
        vb = simulate("vb", "lu", refs=REFS, seed=seed)
        vp = simulate("vp", "lu", refs=REFS, seed=seed)
        assert vp.miss_ratio > vb.miss_ratio


@pytest.mark.parametrize("scale", [0.0625, 0.25])
class TestScaleRobustness:
    def test_ncs_floor_holds(self, scale):
        ncs = simulate("ncs", "barnes", refs=REFS, scale=scale)
        base = simulate("base", "barnes", refs=REFS, scale=scale)
        assert ncs.miss_ratio <= base.miss_ratio

    def test_fft_stays_necessary_dominated(self, scale):
        r = simulate("base", "fft", refs=REFS, scale=scale)
        c = r.counters
        assert c.remote_necessary > c.remote_capacity

    def test_radix_inclusion_pathology_survives(self, scale):
        nc = simulate("nc", "radix", refs=REFS, scale=scale)
        vb = simulate("vb", "radix", refs=REFS, scale=scale)
        assert nc.write_miss_ratio > vb.write_miss_ratio
